package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"proxdisc/internal/telemetry"
)

// Sharded is a write-ahead log split into one segment stream per cluster
// shard. Records still carry one global, strictly increasing sequence —
// the commit order the op stream, followers, and recovery all observe —
// but the bytes land in per-stream segment files (wal-<stream>-<seq>.seg,
// named by the stream id and the sequence of the segment's first record),
// each appended under its own mutex. Appenders touching different shards
// therefore never queue on one another's frame writes; they meet only at
// the sequence counter (a few instructions under seqMu) and at the shared
// group-commit coordinator, where one fsync cycle flushes every dirty
// stream and advances a single global durable mark.
//
// Because sequences interleave across streams, any one stream's segment
// carries gaps — the frame format and scanner already tolerate ascending
// gaps, so segment files remain readable by the same code paths as the
// single-stream Log. Recovery and catch-up reads merge the streams back
// into one ordered record stream by global sequence.
//
// A directory previously written by the single-stream Log is adopted
// transparently: its wal-<seq>.seg segments are treated as one extra
// read-only stream that participates in replay, catch-up reads, and
// truncation; new appends go only to the sharded streams.
type Sharded struct {
	dir  string
	opts Options

	streams []*shardStream

	// legacyLast is the last sequence held by adopted single-stream
	// segments (0 when none exist). Their starts are re-listed on use.
	legacyLast uint64

	seqMu    sync.Mutex // assigns global sequences; orders the commit tap
	seq      uint64
	onAppend func(seq uint64, rec []byte)

	failed atomic.Pointer[errBox] // sticky I/O failure: the log refuses further appends
	closed atomic.Bool

	syncMu      sync.Mutex    // serializes flush+fsync cycles (group commit)
	synced      atomic.Uint64 // last sequence known durable
	syncWaiters atomic.Int32  // appenders queued on syncMu, gating the commit window

	appends       *telemetry.Counter
	fsyncs        *telemetry.Counter
	syncedRecords *telemetry.Counter
	appendLatency *telemetry.Histogram
}

// shardStream is one stream's append state. Its mutex covers only this
// stream's buffered frame writes and rotation, so appends to different
// streams proceed in parallel.
type shardStream struct {
	id int

	mu        sync.Mutex
	seg       *os.File
	prevSeg   *os.File // most recently rotated-out segment; kept open for in-flight fsyncs
	bw        *fileWriter
	segStart  uint64
	segSize   int64
	last      uint64 // last sequence appended to this stream
	rotSynced uint64 // highest sequence covered by a rotation's fsync

	// needSync is set by appends and cleared by the group-commit leader
	// just before it fsyncs, so idle streams cost a sync cycle nothing.
	needSync atomic.Bool
}

// shardSegName formats a sharded segment file name.
func shardSegName(stream int, start uint64) string {
	return fmt.Sprintf("wal-%d-%020d%s", stream, start, segSuffix)
}

func shardSegPrefix(stream int) string {
	return fmt.Sprintf("wal-%d-", stream)
}

// OpenSharded opens (or creates) a sharded log with at least the given
// number of streams in dir. Streams found on disk beyond the requested
// count are kept (a log never forgets a stream it has written); legacy
// single-stream segments are adopted read-only. Each stream's final
// segment is scanned and any torn tail truncated, exactly as Open does
// for the single-stream Log.
func OpenSharded(dir string, streams int, opts Options) (*Sharded, error) {
	if streams < 1 {
		streams = 1
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 8 << 20
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	s := &Sharded{dir: dir, opts: opts, onAppend: opts.OnAppend}
	s.initMetrics()
	// Adopt a single-stream Log's segments, if any: find their last intact
	// sequence (truncating a torn tail left by the old version's crash).
	legacySegs, err := listSeqFiles(dir, segPrefix, segSuffix)
	if err != nil {
		return nil, err
	}
	if n := len(legacySegs); n > 0 {
		last := legacySegs[n-1]
		end, lastSeq, err := scanSegment(filepath.Join(dir, segName(last)), last, true, nil)
		if err != nil {
			return nil, err
		}
		if err := truncateAt(filepath.Join(dir, segName(last)), end); err != nil {
			return nil, err
		}
		if lastSeq == 0 {
			lastSeq = last - 1
		}
		s.legacyLast = lastSeq
		s.seq = lastSeq
	}
	// Keep every stream already on disk, even past the requested count: a
	// shrunk configuration must still replay (and truncate) old streams.
	n := streams
	existing, err := shardStreamIDs(dir)
	if err != nil {
		return nil, err
	}
	for _, id := range existing {
		if id+1 > n {
			n = id + 1
		}
	}
	// Pass 1: recover each stream that has segments, truncating torn
	// tails, and find the global sequence high-water mark.
	s.streams = make([]*shardStream, n)
	for id := 0; id < n; id++ {
		st := &shardStream{id: id}
		s.streams[id] = st
		segs, err := listSeqFiles(dir, shardSegPrefix(id), segSuffix)
		if err != nil {
			return nil, err
		}
		if len(segs) == 0 {
			continue // active segment created in pass 2
		}
		last := segs[len(segs)-1]
		path := filepath.Join(dir, shardSegName(id, last))
		end, lastSeq, err := scanSegment(path, last, true, nil)
		if err != nil {
			return nil, err
		}
		if err := truncateAt(path, end); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0o666)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		if lastSeq == 0 {
			lastSeq = last - 1 // empty final segment: named for its next record
		}
		st.seg = f
		st.bw = &fileWriter{f: f}
		st.segStart = last
		st.segSize = end
		st.last = lastSeq
		st.rotSynced = lastSeq // everything recovered is on disk
		if lastSeq > s.seq {
			s.seq = lastSeq
		}
	}
	// Pass 2: give streams without segments an active one, named for the
	// next global sequence (its first record can carry any sequence at or
	// beyond that).
	for _, st := range s.streams {
		if st.seg != nil {
			continue
		}
		if err := s.openStreamSegment(st, s.seq+1); err != nil {
			s.closeFiles()
			return nil, err
		}
		st.last = s.seq
		st.rotSynced = s.seq
	}
	s.synced.Store(s.seq)
	return s, nil
}

// truncateAt cuts a segment file to its intact prefix.
func truncateAt(path string, end int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o666)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(end); err != nil {
		return fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	return nil
}

// shardStreamIDs lists the stream ids that own segments in dir.
func shardStreamIDs(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	seen := map[int]bool{}
	var out []int
	for _, e := range ents {
		name := e.Name()
		var id int
		var seq uint64
		if _, err := fmt.Sscanf(name, "wal-%d-%d.seg", &id, &seq); err != nil {
			continue
		}
		if id >= 0 && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out, nil
}

func (s *Sharded) initMetrics() {
	r := s.opts.Telemetry
	s.appends = r.Counter("proxdisc_wal_appends_total")
	s.fsyncs = r.Counter("proxdisc_wal_fsyncs_total")
	s.syncedRecords = r.Counter("proxdisc_wal_synced_records_total")
	s.appendLatency = r.Histogram("proxdisc_wal_append_duration_seconds")
}

// Metrics returns the log's group-commit counters.
func (s *Sharded) Metrics() Metrics {
	return Metrics{
		Appends:       s.appends.Value(),
		Fsyncs:        s.fsyncs.Value(),
		SyncedRecords: s.syncedRecords.Value(),
	}
}

// Streams reports the number of append streams.
func (s *Sharded) Streams() int { return len(s.streams) }

// SetOnAppend installs (or, with nil, removes) the append observer; see
// Options.OnAppend. The observer is called under the sequence lock, so it
// sees records in contiguous global order regardless of which stream they
// land in.
func (s *Sharded) SetOnAppend(fn func(seq uint64, rec []byte)) {
	s.seqMu.Lock()
	s.onAppend = fn
	s.seqMu.Unlock()
}

// LastSeq reports the last assigned global sequence number.
func (s *Sharded) LastSeq() uint64 {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	return s.seq
}

// EnsureSeq advances the global sequence counter to at least seq; see
// Log.EnsureSeq.
func (s *Sharded) EnsureSeq(seq uint64) {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	if s.seq < seq {
		s.seq = seq
		s.synced.Store(seq)
	}
}

// errBox lets the sticky failure live in an atomic pointer, keeping the
// per-append health check off any shared mutex.
type errBox struct{ err error }

func (s *Sharded) err() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if b := s.failed.Load(); b != nil {
		return b.err
	}
	return nil
}

func (s *Sharded) fail(err error) {
	s.failed.CompareAndSwap(nil, &errBox{err: err})
}

// Append writes the records to the given stream and returns the global
// sequence of the last one, once every record is durable. Appends to
// different streams serialize only on sequence assignment and share
// fsyncs through the cross-stream group commit; appends to one stream
// serialize on that stream's mutex, as before.
func (s *Sharded) Append(stream int, recs ...[]byte) (uint64, error) {
	if len(recs) == 0 {
		return s.LastSeq(), nil
	}
	start := time.Now()
	if stream < 0 {
		stream = 0
	}
	st := s.streams[stream%len(s.streams)]
	st.mu.Lock()
	if err := s.err(); err != nil {
		st.mu.Unlock()
		return 0, err
	}
	var hdr [frameHeader]byte
	var end uint64
	for _, rec := range recs {
		if len(rec) > MaxRecordSize {
			st.mu.Unlock()
			return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordSize", len(rec))
		}
		// The sequence lock is held for just the assignment and the tap:
		// this is the only point where appenders to different streams
		// meet, and it keeps the tap's view contiguous and ordered.
		s.seqMu.Lock()
		s.seq++
		seq := s.seq
		if s.onAppend != nil {
			s.onAppend(seq, rec)
		}
		s.seqMu.Unlock()
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(rec)))
		binary.BigEndian.PutUint64(hdr[4:12], seq)
		crc := crc32.Update(crc32.Checksum(hdr[4:12], crcTable), crcTable, rec)
		binary.BigEndian.PutUint32(hdr[12:16], crc)
		st.bw.Write(hdr[:])
		st.bw.Write(rec)
		st.segSize += frameHeader + int64(len(rec))
		st.last = seq
		end = seq
		s.appends.Inc()
	}
	st.needSync.Store(true)
	if st.segSize >= s.opts.SegmentBytes {
		if err := s.rotateStream(st); err != nil {
			s.fail(err)
			st.mu.Unlock()
			return 0, err
		}
	}
	st.mu.Unlock()
	if err := s.syncTo(end); err != nil {
		return 0, err
	}
	s.appendLatency.Observe(time.Since(start))
	return end, nil
}

// rotateStream flushes and fsyncs st's active segment, then starts a new
// one named for the next global sequence. Called with st.mu held. Unlike
// the single-stream rotate it must NOT advance the global durable mark:
// other streams may still hold unflushed records with earlier sequences.
// It records the rotation in rotSynced instead, so a concurrent group
// commit whose captured file handle this rotation retired can recognize
// its records as already durable.
func (s *Sharded) rotateStream(st *shardStream) error {
	if err := st.bw.Flush(); err != nil {
		return err
	}
	if !s.opts.NoSync {
		if err := st.seg.Sync(); err != nil {
			return err
		}
		s.fsyncs.Inc()
		st.rotSynced = st.last
		st.needSync.Store(false)
	}
	return s.openStreamSegment(st, st.last+1)
}

func (s *Sharded) openStreamSegment(st *shardStream, start uint64) error {
	f, err := os.OpenFile(filepath.Join(s.dir, shardSegName(st.id, start)), os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o666)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	if st.prevSeg != nil {
		st.prevSeg.Close()
	}
	st.prevSeg = st.seg // kept open: a concurrent group commit may still fsync it
	st.seg = f
	st.bw = &fileWriter{f: f}
	st.segStart = start
	st.segSize = 0
	return nil
}

func (s *Sharded) advanceSynced(to uint64) {
	for {
		cur := s.synced.Load()
		if cur >= to {
			return
		}
		if s.synced.CompareAndSwap(cur, to) {
			s.syncedRecords.Add(to - cur)
			return
		}
	}
}

// syncTo blocks until every record up to target is durable. One leader
// per cycle flushes and fsyncs every dirty stream — the cross-stream
// group commit: concurrent appenders to different shards share the same
// disk syncs instead of issuing one each.
func (s *Sharded) syncTo(target uint64) error {
	if s.synced.Load() >= target {
		return nil
	}
	s.syncWaiters.Add(1)
	s.syncMu.Lock()
	s.syncWaiters.Add(-1)
	defer s.syncMu.Unlock()
	if s.synced.Load() >= target {
		return nil
	}
	// Commit window: held open only while other appenders are in flight,
	// exactly as in Log.syncTo.
	if d := s.opts.MaxSyncDelay; d > 0 && !s.opts.NoSync && s.syncWaiters.Load() > 0 {
		time.Sleep(d)
	}
	if err := s.err(); err != nil {
		return err
	}
	// The durable mark this cycle will claim is captured BEFORE the
	// flush loop: any record at or below it was assigned — and therefore
	// buffered, under its stream's mutex — before we lock that stream
	// below, so the loop cannot miss it. Records assigned during the loop
	// may ride along in the flush but are claimed by the next cycle.
	s.seqMu.Lock()
	flushed := s.seq
	s.seqMu.Unlock()
	type dirtyStream struct {
		st *shardStream
		f  *os.File
		fl uint64
	}
	var dirty []dirtyStream
	for _, st := range s.streams {
		st.mu.Lock()
		if !st.needSync.Load() && len(st.bw.buf) == 0 {
			st.mu.Unlock()
			continue
		}
		if err := st.bw.Flush(); err != nil {
			st.mu.Unlock()
			s.fail(err)
			return err
		}
		if s.opts.NoSync {
			st.needSync.Store(false)
			st.mu.Unlock()
			continue
		}
		// Clear the dirty marker before the fsync: an append racing with
		// the sync re-marks the stream and is covered by the next cycle.
		st.needSync.Store(false)
		dirty = append(dirty, dirtyStream{st: st, f: st.seg, fl: st.last})
		st.mu.Unlock()
	}
	for _, d := range dirty {
		if err := d.f.Sync(); err != nil {
			// The stream may have rotated the captured handle away; the
			// rotation fsyncs the old segment first, so if its mark covers
			// what we flushed the records are durable and the error moot.
			d.st.mu.Lock()
			covered := d.st.rotSynced >= d.fl
			d.st.mu.Unlock()
			if covered {
				continue
			}
			s.fail(err)
			return err
		}
		s.fsyncs.Inc()
	}
	s.advanceSynced(flushed)
	return nil
}

// Sync forces everything appended so far to stable storage.
func (s *Sharded) Sync() error { return s.syncTo(s.LastSeq()) }

// streamSource describes one ordered sequence of segments to merge.
type streamSource struct {
	segs []uint64
	name func(start uint64) string
}

// sources lists each stream's segments (and the legacy stream's, if any)
// for a merge read.
func (s *Sharded) sources() ([]streamSource, error) {
	var out []streamSource
	if legacy, err := listSeqFiles(s.dir, segPrefix, segSuffix); err != nil {
		return nil, err
	} else if len(legacy) > 0 {
		out = append(out, streamSource{segs: legacy, name: segName})
	}
	for _, st := range s.streams {
		segs, err := listSeqFiles(s.dir, shardSegPrefix(st.id), segSuffix)
		if err != nil {
			return nil, err
		}
		if len(segs) == 0 {
			continue
		}
		id := st.id
		out = append(out, streamSource{segs: segs, name: func(start uint64) string { return shardSegName(id, start) }})
	}
	return out, nil
}

// segCursor iterates one stream's records in sequence order, pulling one
// record at a time so the merge never materializes a whole stream.
type segCursor struct {
	dir         string
	src         streamSource
	idx         int // next segment to open
	f           *os.File
	cur         uint64 // start of the open segment
	want        uint64
	tolerateAll bool
	after       uint64

	seq  uint64
	rec  []byte // valid until the next advance; reused
	done bool
}

func (c *segCursor) close() {
	if c.f != nil {
		c.f.Close()
		c.f = nil
	}
}

// next advances to the next intact record with sequence > c.after,
// setting done when the stream is exhausted. A torn or short record ends
// the current segment's readable prefix when tolerated (the final
// segment, or any segment on tolerant reads); elsewhere it is an error.
func (c *segCursor) next() error {
	for {
		if c.f == nil {
			// Skip segments every record of which is <= after.
			for c.idx+1 < len(c.src.segs) && c.src.segs[c.idx+1] <= c.after+1 {
				c.idx++
			}
			if c.idx >= len(c.src.segs) {
				c.done = true
				return nil
			}
			start := c.src.segs[c.idx]
			f, err := os.Open(filepath.Join(c.dir, c.src.name(start)))
			if err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			c.f = f
			c.cur = start
			c.want = start
			c.idx++
		}
		tolerate := c.tolerateAll || c.idx >= len(c.src.segs)
		var hdr [frameHeader]byte
		if _, err := io.ReadFull(c.f, hdr[:]); err != nil {
			if err == io.EOF || (tolerate && errors.Is(err, io.ErrUnexpectedEOF)) {
				c.close()
				continue
			}
			name := c.src.name(c.cur)
			c.close()
			return fmt.Errorf("wal: segment %s: %w", name, err)
		}
		size := binary.BigEndian.Uint32(hdr[:4])
		seq := binary.BigEndian.Uint64(hdr[4:12])
		crc := binary.BigEndian.Uint32(hdr[12:16])
		if size > MaxRecordSize || seq < c.want {
			if tolerate {
				c.close()
				continue
			}
			name := c.src.name(c.cur)
			c.close()
			return fmt.Errorf("wal: segment %s: corrupt record", name)
		}
		if cap(c.rec) < int(size) {
			c.rec = make([]byte, size)
		}
		rec := c.rec[:size]
		if _, err := io.ReadFull(c.f, rec); err != nil {
			if tolerate && (err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF)) {
				c.close()
				continue
			}
			name := c.src.name(c.cur)
			c.close()
			return fmt.Errorf("wal: segment %s: %w", name, err)
		}
		if crc32.Update(crc32.Checksum(hdr[4:12], crcTable), crcTable, rec) != crc {
			if tolerate {
				c.close()
				continue
			}
			name := c.src.name(c.cur)
			c.close()
			return fmt.Errorf("wal: segment %s: corrupt record", name)
		}
		c.want = seq + 1
		if seq <= c.after {
			continue
		}
		c.seq = seq
		c.rec = rec
		return nil
	}
}

// merge streams every record with sequence in (after, bound] to fn in
// global sequence order by k-way merging the per-stream cursors. A bound
// of zero means unbounded. rec is reused between calls; fn must not
// retain it.
func (s *Sharded) merge(after, bound uint64, tolerateAll bool, fn func(seq uint64, rec []byte) error) error {
	srcs, err := s.sources()
	if err != nil {
		return err
	}
	cursors := make([]*segCursor, 0, len(srcs))
	defer func() {
		for _, c := range cursors {
			c.close()
		}
	}()
	for _, src := range srcs {
		c := &segCursor{dir: s.dir, src: src, tolerateAll: tolerateAll, after: after}
		if err := c.next(); err != nil {
			return err
		}
		cursors = append(cursors, c)
	}
	for {
		var min *segCursor
		for _, c := range cursors {
			if c.done {
				continue
			}
			if bound > 0 && c.seq > bound {
				// Per-stream sequences ascend, so this cursor has nothing
				// further to contribute.
				c.done = true
				c.close()
				continue
			}
			if min == nil || c.seq < min.seq {
				min = c
			}
		}
		if min == nil {
			return nil
		}
		if err := fn(min.seq, min.rec); err != nil {
			return err
		}
		if err := min.next(); err != nil {
			return err
		}
	}
}

// Replay calls fn for every intact record with sequence strictly greater
// than after, in global order, merge-reading all streams. It must
// complete before the first Append. A torn tail in any stream's final
// segment ends that stream cleanly; corruption anywhere else is an
// error. fn's rec is reused between calls and must not be retained.
func (s *Sharded) Replay(after uint64, fn func(seq uint64, rec []byte) error) error {
	return s.merge(after, 0, false, fn)
}

// ReadAfter streams every record with sequence strictly greater than
// after that was appended before the call, in global order. Safe against
// concurrent appends: the emission bound is captured first, then every
// stream's buffer is flushed to the OS, so all records at or below the
// bound are readable and nothing beyond it is emitted — preserving the
// contiguity downstream consumers (the follower ship loop) rely on. A
// segment deleted underneath the scan by a concurrent TruncateBefore
// surfaces as an error; the caller restarts from the newer snapshot.
func (s *Sharded) ReadAfter(after uint64, fn func(seq uint64, rec []byte) error) error {
	s.seqMu.Lock()
	bound := s.seq
	s.seqMu.Unlock()
	if bound <= after {
		return nil
	}
	for _, st := range s.streams {
		st.mu.Lock()
		err := st.bw.Flush()
		st.mu.Unlock()
		if err != nil {
			s.fail(err)
			return err
		}
	}
	return s.merge(after, bound, true, fn)
}

// FirstSeq reports the sequence floor of ReadAfter: the earliest sequence
// from which every stream can serve all of its records. It is the maximum
// of the streams' first-segment starts — conservative, because another
// stream may still hold a few earlier records, but guaranteed gap-free
// above it.
func (s *Sharded) FirstSeq() (uint64, error) {
	srcs, err := s.sources()
	if err != nil {
		return 0, err
	}
	if len(srcs) == 0 {
		return s.LastSeq() + 1, nil
	}
	var first uint64
	for _, src := range srcs {
		if src.segs[0] > first {
			first = src.segs[0]
		}
	}
	return first, nil
}

// TruncateBefore deletes, in every stream, segments every record of which
// has sequence strictly below seq. Active segments are never deleted;
// fully covered legacy segments are, which is how an adopted
// single-stream log eventually disappears.
func (s *Sharded) TruncateBefore(seq uint64) error {
	removed := false
	if legacy, err := listSeqFiles(s.dir, segPrefix, segSuffix); err != nil {
		return err
	} else {
		for i, start := range legacy {
			end := s.legacyLast // last segment runs through the legacy stream's end
			if i+1 < len(legacy) {
				end = legacy[i+1] - 1
			}
			if end >= seq {
				break
			}
			if err := os.Remove(filepath.Join(s.dir, segName(start))); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			removed = true
		}
	}
	for _, st := range s.streams {
		st.mu.Lock()
		active := st.segStart
		st.mu.Unlock()
		segs, err := listSeqFiles(s.dir, shardSegPrefix(st.id), segSuffix)
		if err != nil {
			return err
		}
		for i, start := range segs {
			if start == active || i+1 >= len(segs) {
				break
			}
			if segs[i+1] > seq {
				break // this segment still holds records >= seq
			}
			if err := os.Remove(filepath.Join(s.dir, shardSegName(st.id, start))); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			removed = true
		}
	}
	if removed {
		return syncDir(s.dir)
	}
	return nil
}

func (s *Sharded) closeFiles() {
	for _, st := range s.streams {
		if st == nil {
			continue
		}
		if st.prevSeg != nil {
			st.prevSeg.Close()
			st.prevSeg = nil
		}
		if st.seg != nil {
			st.seg.Close()
			st.seg = nil
		}
	}
}

// Close flushes, fsyncs, and closes all streams.
func (s *Sharded) Close() error {
	err := s.Sync()
	if s.closed.Swap(true) {
		return nil
	}
	for _, st := range s.streams {
		st.mu.Lock()
		if st.prevSeg != nil {
			st.prevSeg.Close()
			st.prevSeg = nil
		}
		if cerr := st.seg.Close(); cerr != nil && err == nil {
			err = cerr
		}
		st.mu.Unlock()
	}
	return err
}
