package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

const (
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	snapTmp    = ".snap.tmp"
)

// snapName formats a snapshot file name from the log sequence it covers.
func snapName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix)
}

// WriteSnapshot atomically writes a snapshot covering every log record up
// to and including seq: write supplies the body, which lands under a
// temporary name, is fsynced, and is renamed into place (with a directory
// sync), so a crash leaves either the previous snapshot or the new one —
// never a partial file under the real name.
func WriteSnapshot(dir string, seq uint64, write func(w io.Writer) error) error {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	tmp := filepath.Join(dir, snapName(seq)+snapTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o666)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName(seq))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(dir)
}

// Snapshots lists the snapshot sequences present in dir, ascending.
func Snapshots(dir string) ([]uint64, error) {
	return listSeqFiles(dir, snapPrefix, snapSuffix)
}

// OpenLatestSnapshot opens the highest-sequence snapshot in dir,
// reporting the sequence it covers. ok is false when dir holds no
// snapshot.
func OpenLatestSnapshot(dir string) (r io.ReadCloser, seq uint64, ok bool, err error) {
	seqs, err := Snapshots(dir)
	if err != nil || len(seqs) == 0 {
		return nil, 0, false, err
	}
	seq = seqs[len(seqs)-1]
	f, err := os.Open(filepath.Join(dir, snapName(seq)))
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: %w", err)
	}
	return f, seq, true, nil
}

// RemoveSnapshotsBefore deletes snapshots covering sequences strictly
// below seq — retention after a newer snapshot has landed.
func RemoveSnapshotsBefore(dir string, seq uint64) error {
	seqs, err := Snapshots(dir)
	if err != nil {
		return err
	}
	removed := false
	for _, s := range seqs {
		if s >= seq {
			break
		}
		if err := os.Remove(filepath.Join(dir, snapName(s))); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		removed = true
	}
	if removed {
		return syncDir(dir)
	}
	return nil
}
