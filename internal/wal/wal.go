// Package wal implements the durability layer of a proxdisc management
// node: a segmented, CRC-framed write-ahead log of encoded operations
// (package op) plus atomically written on-disk snapshots.
//
// The log is the node's commit record. A write is acknowledged only after
// its record is on stable storage; concurrent appenders share fsyncs
// through group commit (the first caller to reach the disk syncs
// everything flushed so far, and everyone behind it observes the advanced
// sync mark and returns without touching the disk), so the per-write cost
// of durability amortizes under load instead of serializing behind one
// fsync per operation.
//
// Records are framed as
//
//	length(4) sequence(8) crc32c(4) payload
//
// with the CRC (Castagnoli) covering sequence and payload. The log is
// split into segment files named by the sequence of their first record;
// snapshots make whole segments obsolete and TruncateBefore deletes them,
// so the log's disk footprint is bounded by the snapshot cadence. A crash
// can tear the final record; Open detects the torn tail by CRC and
// truncates it — a torn record was never acknowledged, so dropping it
// loses nothing the caller promised.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"proxdisc/internal/telemetry"
)

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
	// frameHeader is length(4) + sequence(8) + crc(4).
	frameHeader = 16
	// MaxRecordSize bounds one record's payload, protecting Replay from a
	// corrupt length field. It comfortably exceeds the largest encodable
	// op.
	MaxRecordSize = 1 << 20
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Log.
type Options struct {
	// SegmentBytes is the size at which the active segment is rotated
	// (default 8 MiB).
	SegmentBytes int64
	// NoSync skips fsync on append (records are still flushed to the OS).
	// It trades crash durability for speed; tests and benchmarks that
	// model process crashes — not machine crashes — use it.
	NoSync bool
	// MaxSyncDelay, when positive, holds each group-commit fsync open for
	// up to this long (a sub-millisecond timer is the intended range) so
	// that appenders arriving during the window share the sync. Under
	// light load this trades a bounded latency bump per write for far
	// fewer fsyncs; under heavy load the window simply widens the batch.
	// Zero preserves the fsync-immediately behaviour. Ignored with NoSync.
	MaxSyncDelay time.Duration
	// OnAppend, when set, observes every appended record — called under
	// the append lock, in sequence order, before the record is durable
	// (the record matches the primary's in-memory state, which also
	// mutates before the commit lands). It must not block and must not
	// retain rec, which is owned by the caller. It is the feed of the
	// replication stream: network followers subscribe here and fall back
	// to reading the log's files when they lag. Use SetOnAppend to
	// install it after Open.
	OnAppend func(seq uint64, rec []byte)
	// Telemetry, when set, exposes the log's counters and append-latency
	// histogram (the proxdisc_wal_* series) through the registry. Without
	// it the metrics are still collected — Metrics() reads them — just not
	// exported.
	Telemetry *telemetry.Registry
}

// Log is an append-only record log. Append is safe for concurrent use;
// Replay must complete before the first Append.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex // guards everything below, and frame writes
	seg      *os.File   // active segment
	prevSeg  *os.File   // most recently rotated-out segment; see rotate
	bw       *fileWriter
	segStart uint64 // sequence of the active segment's first record
	segSize  int64
	seq      uint64 // last assigned sequence
	failed   error  // sticky I/O failure: the log refuses further appends
	closed   bool

	syncMu      sync.Mutex    // serializes flush+fsync cycles (group commit)
	synced      atomic.Uint64 // last sequence known durable
	syncWaiters atomic.Int32  // appenders queued on syncMu, gating the commit window

	// Group-commit telemetry. The telemetry types are the source of truth
	// (registered under the proxdisc_wal_* names when Options.Telemetry is
	// set); Metrics() is a compatibility view over them.
	appends       *telemetry.Counter   // records appended
	fsyncs        *telemetry.Counter   // fsync syscalls issued
	syncedRecords *telemetry.Counter   // records those fsyncs made durable
	appendLatency *telemetry.Histogram // Append call latency, fsync wait included
}

// Metrics reports a log's group-commit counters. SyncedRecords/Fsyncs is
// the average commit batch: how many records each disk sync covered.
type Metrics struct {
	// Appends is the number of records appended.
	Appends uint64
	// Fsyncs is the number of fsync syscalls issued (0 with NoSync).
	Fsyncs uint64
	// SyncedRecords is the number of records made durable by those
	// fsyncs.
	SyncedRecords uint64
}

// DurabilityStats is the operational surface of a durable node: where its
// checkpoints stand, how much log a restart would replay, and how the
// group commit is batching. Producers (the cluster) fill it; front ends
// carry it into status responses and logs.
type DurabilityStats struct {
	// SnapshotSeq is the covering sequence of the latest on-disk snapshot
	// (0 before the first checkpoint).
	SnapshotSeq uint64
	// TailRecords is the number of log records beyond that snapshot — the
	// tail a restart replays and the retention buffer followers catch up
	// from.
	TailRecords uint64
	// Head is the last committed sequence.
	Head uint64
	// ReplayTime is how long the last open spent replaying the tail.
	ReplayTime time.Duration
	// Log carries the group-commit counters.
	Log Metrics
}

// Metrics returns the log's group-commit counters: a compatibility view
// over the telemetry registry's proxdisc_wal_* series, which are the
// counters' home.
func (l *Log) Metrics() Metrics {
	return Metrics{
		Appends:       l.appends.Value(),
		Fsyncs:        l.fsyncs.Value(),
		SyncedRecords: l.syncedRecords.Value(),
	}
}

// initMetrics resolves the log's metric handles. With a registry the
// series are registered for export (get-or-create, so a reopened log in
// the same process keeps counting the same series); without one they are
// private to this Log, which is what per-instance tests of exact counts
// rely on.
func (l *Log) initMetrics() {
	r := l.opts.Telemetry
	l.appends = r.Counter("proxdisc_wal_appends_total")
	l.fsyncs = r.Counter("proxdisc_wal_fsyncs_total")
	l.syncedRecords = r.Counter("proxdisc_wal_synced_records_total")
	l.appendLatency = r.Histogram("proxdisc_wal_append_duration_seconds")
}

// SetOnAppend installs (or, with nil, removes) the append observer after
// Open; see Options.OnAppend. It serializes with appends, so the observer
// sees every record from the moment the call returns, and none before.
func (l *Log) SetOnAppend(fn func(seq uint64, rec []byte)) {
	l.mu.Lock()
	l.opts.OnAppend = fn
	l.mu.Unlock()
}

// fileWriter is a small buffered writer that tracks its unflushed byte
// count, so rotation decisions see the true segment size.
type fileWriter struct {
	f   *os.File
	buf []byte
}

func (w *fileWriter) Write(p []byte) {
	w.buf = append(w.buf, p...)
}

func (w *fileWriter) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	w.buf = w.buf[:0]
	return nil
}

// Open opens (or creates) the log in dir. An existing log is scanned from
// its final segment: a torn or corrupt tail record is truncated away and
// appending resumes after the last intact record.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 8 << 20
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	l.initMetrics()
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Scan the final segment to find the end of the intact log and drop
	// any torn tail. Earlier segments are validated by Replay, their only
	// reader.
	last := segs[len(segs)-1]
	end, lastSeq, err := scanSegment(filepath.Join(dir, segName(last)), last, true, nil)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(last)), os.O_RDWR, 0o666)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	if lastSeq == 0 {
		lastSeq = last - 1 // empty final segment: named for its next record
	}
	l.seg = f
	l.bw = &fileWriter{f: f}
	l.segStart = last
	l.segSize = end
	l.seq = lastSeq
	l.synced.Store(lastSeq)
	return l, nil
}

// segName formats a segment file name from its first sequence.
func segName(start uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, start, segSuffix)
}

// segments lists existing segment start sequences in ascending order.
func (l *Log) segments() ([]uint64, error) {
	return listSeqFiles(l.dir, segPrefix, segSuffix)
}

// listSeqFiles lists, ascending, the sequence numbers encoded in dir's
// file names carrying the given prefix and suffix — the shared naming
// scheme of log segments and snapshot files. A missing directory is an
// empty listing.
func listSeqFiles(dir, prefix, suffix string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// scanSegment reads one segment's records. With tolerateTail, a torn or
// corrupt record ends the scan cleanly (returning the offset where the
// intact prefix ends); otherwise it is an error. fn, when non-nil, is
// called for every intact record.
func scanSegment(path string, start uint64, tolerateTail bool, fn func(seq uint64, rec []byte) error) (validEnd int64, lastSeq uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var (
		hdr  [frameHeader]byte
		off  int64
		want = start
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return off, want - 1, nil
			}
			if tolerateTail && errors.Is(err, io.ErrUnexpectedEOF) {
				return off, want - 1, nil
			}
			return 0, 0, fmt.Errorf("wal: segment %s offset %d: %w", filepath.Base(path), off, err)
		}
		size := binary.BigEndian.Uint32(hdr[:4])
		seq := binary.BigEndian.Uint64(hdr[4:12])
		crc := binary.BigEndian.Uint32(hdr[12:16])
		bad := size > MaxRecordSize || seq < want
		var rec []byte
		if !bad {
			rec = make([]byte, size)
			if _, err := io.ReadFull(f, rec); err != nil {
				if tolerateTail && (err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF)) {
					return off, want - 1, nil
				}
				return 0, 0, fmt.Errorf("wal: segment %s offset %d: %w", filepath.Base(path), off, err)
			}
			bad = crc32.Update(crc32.Checksum(hdr[4:12], crcTable), crcTable, rec) != crc
		}
		if bad {
			if tolerateTail {
				return off, want - 1, nil
			}
			return 0, 0, fmt.Errorf("wal: segment %s offset %d: corrupt record", filepath.Base(path), off)
		}
		if fn != nil {
			if err := fn(seq, rec); err != nil {
				return 0, 0, err
			}
		}
		off += frameHeader + int64(size)
		want = seq + 1
	}
}

func (l *Log) openSegment(start uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(start)), os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o666)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	if l.prevSeg != nil {
		l.prevSeg.Close()
	}
	l.prevSeg = l.seg // kept open: a concurrent group commit may still fsync it
	l.seg = f
	l.bw = &fileWriter{f: f}
	l.segStart = start
	l.segSize = 0
	return nil
}

// LastSeq reports the last assigned sequence number.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// EnsureSeq advances the log's sequence counter to at least seq, so
// records appended after a snapshot restore can never reuse a sequence
// the snapshot already covers (possible only when the log files were
// removed out from under their snapshot).
func (l *Log) EnsureSeq(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seq < seq {
		l.seq = seq
		l.synced.Store(seq)
	}
}

// Append writes the records to the log and returns the sequence of the
// last one, once every record is durable (group commit: concurrent
// appenders share fsyncs). With Options.NoSync it returns after the
// records reach the OS.
func (l *Log) Append(recs ...[]byte) (uint64, error) {
	if len(recs) == 0 {
		return l.LastSeq(), nil
	}
	start := time.Now()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return 0, err
	}
	var hdr [frameHeader]byte
	for _, rec := range recs {
		if len(rec) > MaxRecordSize {
			l.mu.Unlock()
			return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordSize", len(rec))
		}
		l.seq++
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(rec)))
		binary.BigEndian.PutUint64(hdr[4:12], l.seq)
		crc := crc32.Update(crc32.Checksum(hdr[4:12], crcTable), crcTable, rec)
		binary.BigEndian.PutUint32(hdr[12:16], crc)
		l.bw.Write(hdr[:])
		l.bw.Write(rec)
		l.segSize += frameHeader + int64(len(rec))
		l.appends.Inc()
		if l.opts.OnAppend != nil {
			l.opts.OnAppend(l.seq, rec)
		}
	}
	end := l.seq
	if l.segSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.failed = err
			l.mu.Unlock()
			return 0, err
		}
	}
	l.mu.Unlock()
	if err := l.syncTo(end); err != nil {
		return 0, err
	}
	l.appendLatency.Observe(time.Since(start))
	return end, nil
}

// rotateLocked flushes and fsyncs the active segment, then starts a new
// one named for the next record. Called with l.mu held.
func (l *Log) rotateLocked() error {
	if err := l.bw.Flush(); err != nil {
		return err
	}
	if !l.opts.NoSync {
		if err := l.seg.Sync(); err != nil {
			return err
		}
		l.fsyncs.Inc()
	}
	// Everything assigned so far lives in the just-synced segment.
	l.advanceSynced(l.seq)
	return l.openSegment(l.seq + 1)
}

// advanceSynced raises the durable mark to `to` and accounts the records
// the advance newly covers.
func (l *Log) advanceSynced(to uint64) {
	for {
		cur := l.synced.Load()
		if cur >= to {
			return
		}
		if l.synced.CompareAndSwap(cur, to) {
			l.syncedRecords.Add(to - cur)
			return
		}
	}
}

// syncTo blocks until every record up to target is durable. The syncMu
// critical section is the group-commit batch: the first appender in
// flushes and fsyncs everything buffered so far; appenders queued behind
// it usually find their records already covered and return immediately.
func (l *Log) syncTo(target uint64) error {
	if l.synced.Load() >= target {
		return nil
	}
	l.syncWaiters.Add(1)
	l.syncMu.Lock()
	l.syncWaiters.Add(-1)
	defer l.syncMu.Unlock()
	if l.synced.Load() >= target {
		return nil
	}
	// Group-commit window: the leader holds the sync open for MaxSyncDelay
	// only while other appenders are actually in flight, so their records —
	// and any arriving during the window — land in this flush and they
	// return without touching the disk. A lone appender skips the window:
	// sleeping with nobody queued would add MaxSyncDelay to every write
	// while holding syncMu, which is exactly the serial-beats-parallel
	// inversion the unconditional wait used to cause.
	if d := l.opts.MaxSyncDelay; d > 0 && !l.opts.NoSync && l.syncWaiters.Load() > 0 {
		time.Sleep(d)
	}
	l.mu.Lock()
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	if err := l.bw.Flush(); err != nil {
		l.failed = err
		l.mu.Unlock()
		return err
	}
	flushed := l.seq
	f := l.seg
	l.mu.Unlock()
	if !l.opts.NoSync {
		if err := f.Sync(); err != nil {
			// A rotation may have retired f between the capture above and
			// this Sync (it fsyncs the old segment before closing it, and
			// advances the sync mark); if the mark already covers the
			// records we flushed, they are durable and the error is moot.
			if l.synced.Load() >= flushed {
				return nil
			}
			l.mu.Lock()
			l.failed = err
			l.mu.Unlock()
			return err
		}
		l.fsyncs.Inc()
	}
	l.advanceSynced(flushed)
	return nil
}

// Sync forces everything appended so far to stable storage.
func (l *Log) Sync() error { return l.syncTo(l.LastSeq()) }

// Replay calls fn for every intact record with sequence strictly greater
// than after, in order. It must complete before the first Append. A torn
// tail in the final segment ends the replay cleanly; corruption anywhere
// else is an error.
func (l *Log) Replay(after uint64, fn func(seq uint64, rec []byte) error) error {
	return l.scanFrom(after, false, fn)
}

// FirstSeq reports the sequence of the earliest record the log's files
// can still serve — the floor of ReadAfter. Records below it have been
// truncated away behind a snapshot. On an empty log it is one past the
// last assigned sequence (nothing is readable, nothing is missing).
func (l *Log) FirstSeq() (uint64, error) {
	segs, err := l.segments()
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		return l.LastSeq() + 1, nil
	}
	return segs[0], nil
}

// ReadAfter streams every intact on-disk record with sequence strictly
// greater than after, in order — the catch-up read of the replication
// stream. Unlike Replay it is safe to call while the log is being
// appended to: the scan of the active segment stops cleanly at the
// flushed frontier (records observed by Options.OnAppend may trail the
// file by one unflushed batch), and a segment deleted underneath the scan
// by a concurrent TruncateBefore surfaces as an error — the caller
// restarts from the newer snapshot that justified the truncation.
func (l *Log) ReadAfter(after uint64, fn func(seq uint64, rec []byte) error) error {
	return l.scanFrom(after, true, fn)
}

// scanFrom is the shared body of Replay and ReadAfter; tolerant scans
// treat an incomplete record in ANY segment as the end of that segment's
// readable prefix (a concurrent appender's unflushed tail), while strict
// scans accept one only in the final segment (the torn tail of a crash).
func (l *Log) scanFrom(after uint64, tolerateAll bool, fn func(seq uint64, rec []byte) error) error {
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for i, start := range segs {
		if i+1 < len(segs) && segs[i+1] <= after+1 {
			continue // every record here is <= after
		}
		tolerate := tolerateAll || i == len(segs)-1
		_, _, err := scanSegment(filepath.Join(l.dir, segName(start)), start, tolerate, func(seq uint64, rec []byte) error {
			if seq <= after {
				return nil
			}
			return fn(seq, rec)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// TruncateBefore deletes segments every record of which has sequence
// strictly below seq — the log-compaction step after a snapshot covering
// seq-1 has landed. The active segment is never deleted.
func (l *Log) TruncateBefore(seq uint64) error {
	l.mu.Lock()
	active := l.segStart
	l.mu.Unlock()
	segs, err := l.segments()
	if err != nil {
		return err
	}
	removed := false
	for i, start := range segs {
		if start == active || i+1 >= len(segs) {
			break
		}
		if segs[i+1] > seq {
			break // this segment still holds records >= seq
		}
		if err := os.Remove(filepath.Join(l.dir, segName(start))); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		removed = true
	}
	if removed {
		return syncDir(l.dir)
	}
	return nil
}

// Close flushes, fsyncs, and closes the log.
func (l *Log) Close() error {
	err := l.Sync()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.prevSeg != nil {
		l.prevSeg.Close()
		l.prevSeg = nil
	}
	if cerr := l.seg.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so file creations, renames, and deletions in
// it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
