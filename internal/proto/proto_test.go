package proto

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4}
	if err := WriteFrame(&buf, MsgJoinRequest, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgJoinRequest || !bytes.Equal(got, payload) {
		t.Fatalf("typ=%v payload=%v", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgAck, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgAck || len(got) != 0 {
		t.Fatalf("typ=%v payload=%v", typ, got)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgAck, make([]byte, MaxFrameSize)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err=%v", err)
	}
	// Oversized length header on the read side.
	bad := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(MsgAck)}
	if _, _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err=%v", err)
	}
	// Zero-length frame is invalid (must at least carry the type byte).
	zero := []byte{0, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(zero)); err == nil {
		t.Fatal("accepted zero-size frame")
	}
}

func TestFrameTruncatedRead(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgAck, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("accepted truncated frame")
	}
}

func TestJoinRequestRoundTrip(t *testing.T) {
	m := &JoinRequest{Peer: 42, Addr: "127.0.0.1:9000", Path: []int32{5, 9, 13, 0}}
	b, err := EncodeJoinRequest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJoinRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Peer != m.Peer || got.Addr != m.Addr || len(got.Path) != len(m.Path) {
		t.Fatalf("got=%+v", got)
	}
	for i := range m.Path {
		if got.Path[i] != m.Path[i] {
			t.Fatalf("path[%d]=%d", i, got.Path[i])
		}
	}
}

func TestJoinRequestLimits(t *testing.T) {
	if _, err := EncodeJoinRequest(&JoinRequest{Path: make([]int32, MaxPathLen+1)}); !errors.Is(err, ErrLimit) {
		t.Fatalf("err=%v", err)
	}
	if _, err := EncodeJoinRequest(&JoinRequest{Addr: strings.Repeat("x", MaxAddrLen+1)}); !errors.Is(err, ErrLimit) {
		t.Fatalf("err=%v", err)
	}
	// Decoder-side limit: forge a count beyond the cap.
	forged := []byte{
		0, 0, 0, 0, 0, 0, 0, 1, // peer
		0, 0, // addr len 0
		0xFF, 0xFF, // path count 65535
	}
	if _, err := DecodeJoinRequest(forged); !errors.Is(err, ErrLimit) {
		t.Fatalf("err=%v", err)
	}
}

func TestJoinRequestTrailingBytes(t *testing.T) {
	m := &JoinRequest{Peer: 1, Addr: "a", Path: []int32{0}}
	b, _ := EncodeJoinRequest(m)
	b = append(b, 0xAB)
	if _, err := DecodeJoinRequest(b); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}

func TestResponsesRoundTrip(t *testing.T) {
	cands := []Candidate{
		{Peer: 1, DTree: 3, Addr: "10.0.0.1:1"},
		{Peer: 2, DTree: 0, Addr: ""},
	}
	jb, err := EncodeJoinResponse(&JoinResponse{Neighbors: cands})
	if err != nil {
		t.Fatal(err)
	}
	jr, err := DecodeJoinResponse(jb)
	if err != nil {
		t.Fatal(err)
	}
	if len(jr.Neighbors) != 2 || jr.Neighbors[0] != cands[0] || jr.Neighbors[1] != cands[1] {
		t.Fatalf("join resp=%+v", jr)
	}
	lb, err := EncodeLookupResponse(&LookupResponse{Neighbors: cands})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := DecodeLookupResponse(lb)
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Neighbors) != 2 {
		t.Fatalf("lookup resp=%+v", lr)
	}
}

func TestResponseLimit(t *testing.T) {
	if _, err := EncodeJoinResponse(&JoinResponse{Neighbors: make([]Candidate, MaxNeighbors+1)}); !errors.Is(err, ErrLimit) {
		t.Fatalf("err=%v", err)
	}
}

func TestPeerIDMessages(t *testing.T) {
	lr, err := DecodeLookupRequest(EncodeLookupRequest(&LookupRequest{Peer: -7}))
	if err != nil || lr.Peer != -7 {
		t.Fatalf("lookup=%+v err=%v", lr, err)
	}
	lv, err := DecodeLeaveRequest(EncodeLeaveRequest(&LeaveRequest{Peer: 9}))
	if err != nil || lv.Peer != 9 {
		t.Fatalf("leave=%+v err=%v", lv, err)
	}
	rf, err := DecodeRefreshRequest(EncodeRefreshRequest(&RefreshRequest{Peer: 11}))
	if err != nil || rf.Peer != 11 {
		t.Fatalf("refresh=%+v err=%v", rf, err)
	}
	if _, err := DecodeLookupRequest([]byte{1, 2}); err == nil {
		t.Fatal("accepted short peer id")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e := &Error{Code: CodeUnknownPeer, Message: "peer 5 not found"}
	got, err := DecodeError(EncodeError(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != e.Code || got.Message != e.Message {
		t.Fatalf("got=%+v", got)
	}
	if !strings.Contains(got.Error(), "peer 5") {
		t.Fatalf("error string=%q", got.Error())
	}
	// Oversized messages are truncated, not rejected.
	big := &Error{Code: 1, Message: strings.Repeat("m", 1000)}
	got2, err := DecodeError(EncodeError(big))
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Message) != MaxAddrLen {
		t.Fatalf("message length %d", len(got2.Message))
	}
}

func TestLandmarksRoundTrip(t *testing.T) {
	m := &LandmarksResponse{
		Routers: []int32{10, 20, 30},
		Addrs:   []string{"127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"},
	}
	b, err := EncodeLandmarksResponse(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLandmarksResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Routers) != 3 || got.Routers[1] != 20 || got.Addrs[2] != "127.0.0.1:7003" {
		t.Fatalf("got=%+v", got)
	}
	if _, err := EncodeLandmarksResponse(&LandmarksResponse{Routers: []int32{1}, Addrs: nil}); err == nil {
		t.Fatal("accepted mismatched slices")
	}
}

func TestProbeRoundTrip(t *testing.T) {
	b := EncodeProbe(0xDEADBEEF12345678)
	nonce, err := DecodeProbe(b)
	if err != nil {
		t.Fatal(err)
	}
	if nonce != 0xDEADBEEF12345678 {
		t.Fatalf("nonce=%x", nonce)
	}
	if _, err := DecodeProbe(b[:8]); err == nil {
		t.Fatal("accepted short probe")
	}
	b[0] ^= 0xFF
	if _, err := DecodeProbe(b); err == nil {
		t.Fatal("accepted bad magic")
	}
}

// Property: JoinRequest round-trips for arbitrary valid field values.
func TestJoinRequestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &JoinRequest{
			Peer: rng.Int63() - rng.Int63(),
			Addr: strings.Repeat("a", rng.Intn(64)),
			Path: make([]int32, rng.Intn(MaxPathLen)),
		}
		for i := range m.Path {
			m.Path[i] = rng.Int31()
		}
		b, err := EncodeJoinRequest(m)
		if err != nil {
			return false
		}
		got, err := DecodeJoinRequest(b)
		if err != nil {
			return false
		}
		if got.Peer != m.Peer || got.Addr != m.Addr || len(got.Path) != len(m.Path) {
			return false
		}
		for i := range m.Path {
			if got.Path[i] != m.Path[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on random garbage.
func TestDecodersRobustToGarbage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := make([]byte, rng.Intn(256))
		rng.Read(b)
		// All decoders must return (possibly error) without panicking.
		_, _ = DecodeJoinRequest(b)
		_, _ = DecodeJoinResponse(b)
		_, _ = DecodeLookupRequest(b)
		_, _ = DecodeLookupResponse(b)
		_, _ = DecodeLeaveRequest(b)
		_, _ = DecodeRefreshRequest(b)
		_, _ = DecodeLandmarksResponse(b)
		_, _ = DecodeError(b)
		_, _ = DecodeProbe(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- shard-aware messages (cluster wire protocol) ---

func TestRedirectRoundTrip(t *testing.T) {
	m := &Redirect{Addr: "10.0.0.7:7470"}
	b, err := EncodeRedirect(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRedirect(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != m.Addr {
		t.Fatalf("got=%+v", got)
	}
}

func TestRedirectLimits(t *testing.T) {
	if _, err := EncodeRedirect(&Redirect{Addr: strings.Repeat("x", MaxAddrLen+1)}); !errors.Is(err, ErrLimit) {
		t.Fatalf("err=%v", err)
	}
	b, err := EncodeRedirect(&Redirect{Addr: "a:1"})
	if err != nil {
		t.Fatal(err)
	}
	// Truncated payloads at every length must error, never panic.
	for n := 0; n < len(b); n++ {
		if _, err := DecodeRedirect(b[:n]); err == nil {
			t.Fatalf("accepted truncation to %d bytes", n)
		}
	}
	// Trailing bytes are rejected.
	if _, err := DecodeRedirect(append(b, 0)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}

func TestForwardedJoinRoundTrip(t *testing.T) {
	m := &JoinRequest{Peer: 9, Addr: "203.0.113.5:7000", Path: []int32{4, 2, 100}}
	b, err := EncodeForwardedJoinRequest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeForwardedJoinRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Peer != m.Peer || got.Addr != m.Addr || len(got.Path) != 3 || got.Path[2] != 100 {
		t.Fatalf("got=%+v", got)
	}
	// The forwarded-join payload is byte-identical to a JoinRequest; only
	// the frame type distinguishes them.
	plain, err := EncodeJoinRequest(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, plain) {
		t.Fatal("forwarded-join payload diverged from JoinRequest")
	}
}

// TestRedirectEpochRoundTrip covers the optional fencing epoch: a zero
// epoch encodes to the classic addr-only payload (pre-epoch peers see
// unchanged bytes), a non-zero epoch rides as the trailing u64, and a
// classic payload decodes to epoch zero.
func TestRedirectEpochRoundTrip(t *testing.T) {
	fenced := &Redirect{Addr: "10.0.0.7:7470", Epoch: 42}
	b, err := EncodeRedirect(fenced)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRedirect(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != fenced.Addr || got.Epoch != 42 {
		t.Fatalf("got=%+v", got)
	}
	plain, err := EncodeRedirect(&Redirect{Addr: fenced.Addr})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(b)-8 {
		t.Fatalf("zero epoch not omitted: %d vs %d bytes", len(plain), len(b))
	}
	got, err = DecodeRedirect(plain)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 0 {
		t.Fatalf("classic payload decoded epoch %d", got.Epoch)
	}
}

// TestForwardedJoinFencedRoundTrip covers the fenced forwarded join: the
// epoch rides as an optional trailing u64 picked up by
// DecodeForwardedJoinOp, zero degrades to the classic byte-identical
// payload, and a classic payload decodes unfenced.
func TestForwardedJoinFencedRoundTrip(t *testing.T) {
	m := &JoinRequest{Peer: 9, Addr: "203.0.113.5:7000", Path: []int32{4, 2, 100}}
	b, err := EncodeForwardedJoinRequestFenced(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	o, err := DecodeForwardedJoinOp(b)
	if err != nil {
		t.Fatal(err)
	}
	if int64(o.Join.Peer) != m.Peer || o.Join.Addr != m.Addr || o.Epoch != 7 {
		t.Fatalf("got op %+v epoch %d", o.Join, o.Epoch)
	}
	plain, err := EncodeForwardedJoinRequestFenced(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	classic, err := EncodeForwardedJoinRequest(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, classic) {
		t.Fatal("zero-epoch fenced payload diverged from the classic form")
	}
	o, err = DecodeForwardedJoinOp(classic)
	if err != nil {
		t.Fatal(err)
	}
	if o.Epoch != 0 {
		t.Fatalf("classic payload decoded epoch %d", o.Epoch)
	}
	// Truncations must error, never panic or mis-frame.
	for n := 0; n < len(b); n++ {
		if _, err := DecodeForwardedJoinOp(b[:n]); err == nil && n != len(classic) {
			t.Fatalf("accepted truncation to %d bytes", n)
		}
	}
}

// --- framing edge cases ---

func TestReadFrameTruncatedHeader(t *testing.T) {
	for n := 0; n < 5; n++ {
		if _, _, err := ReadFrame(bytes.NewReader(make([]byte, n))); err == nil {
			t.Fatalf("accepted %d-byte header", n)
		}
	}
}

func TestReadFrameOversizedDeclaredLength(t *testing.T) {
	// Declared payload of exactly MaxFrameSize+1 must be rejected before
	// any allocation is attempted.
	hdr := []byte{0, 1, 0, 1, byte(MsgAck)} // 65537
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err=%v", err)
	}
	// Largest legal frame round-trips.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgAck, make([]byte, MaxFrameSize-1)); err != nil {
		t.Fatal(err)
	}
	if _, got, err := ReadFrame(&buf); err != nil || len(got) != MaxFrameSize-1 {
		t.Fatalf("len=%d err=%v", len(got), err)
	}
}

func TestDecodeCandidatesTruncated(t *testing.T) {
	resp := &JoinResponse{Neighbors: []Candidate{
		{Peer: 1, DTree: 2, Addr: "a:1"},
		{Peer: 2, DTree: 4, Addr: "b:2"},
	}}
	b, err := EncodeJoinResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(b); n++ {
		if _, err := DecodeJoinResponse(b[:n]); err == nil {
			t.Fatalf("accepted candidate list truncated to %d bytes", n)
		}
	}
	// A count field claiming more entries than the payload holds.
	short := append([]byte(nil), b...)
	short[0], short[1] = 0xFF, 0x00 // count 65280 > MaxNeighbors
	if _, err := DecodeJoinResponse(short); !errors.Is(err, ErrLimit) {
		t.Fatalf("err=%v", err)
	}
	short[0], short[1] = 0, 3 // count 3, but only 2 entries of bytes
	if _, err := DecodeJoinResponse(short); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err=%v", err)
	}
	// Trailing garbage after a well-formed list.
	if _, err := DecodeLookupResponse(append(b, 0xAA)); err == nil {
		t.Fatal("accepted trailing bytes after candidates")
	}
}

func TestDecodeRedirectGarbage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := make([]byte, rng.Intn(256))
		rng.Read(b)
		_, _ = DecodeRedirect(b)
		_, _ = DecodeForwardedJoinRequest(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- version-2 framing ---

func TestFrameIDRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{9, 8, 7}
	if err := WriteFrameID(&buf, MsgJoinResponse, 0xdeadbeefcafe, payload); err != nil {
		t.Fatal(err)
	}
	typ, id, got, err := ReadFrameID(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgJoinResponse || id != 0xdeadbeefcafe || !bytes.Equal(got, payload) {
		t.Fatalf("typ=%v id=%x payload=%v", typ, id, got)
	}
}

func TestFrameIDEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameID(&buf, MsgAck, 7, nil); err != nil {
		t.Fatal(err)
	}
	typ, id, got, err := ReadFrameID(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgAck || id != 7 || len(got) != 0 {
		t.Fatalf("typ=%v id=%d payload=%v", typ, id, got)
	}
}

func TestFrameIDSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameID(&buf, MsgAck, 1, make([]byte, MaxFrameSize)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err=%v", err)
	}
	// A declared length below the 9-byte minimum must be rejected.
	raw := []byte{0, 0, 0, 5, byte(MsgAck), 0, 0, 0, 0}
	if _, _, _, err := ReadFrameID(bytes.NewReader(raw)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err=%v", err)
	}
}

func TestFrameIDTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameID(&buf, MsgJoinRequest, 42, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		if _, _, _, err := ReadFrameID(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(raw))
		}
	}
}

func TestBufPoolReuse(t *testing.T) {
	b := GetBuf(100)
	if len(b) != 100 {
		t.Fatalf("len=%d", len(b))
	}
	PutBuf(b)
	// Oversized buffers must not enter the pool.
	PutBuf(make([]byte, MaxFrameSize+frameIDHeaderSize+1))
	c := GetBuf(8)
	if len(c) != 8 {
		t.Fatalf("len=%d", len(c))
	}
	PutBuf(c)
}

// --- hello negotiation ---

func TestHelloRoundTrip(t *testing.T) {
	h := &Hello{MaxVersion: MaxVersion, MaxBatch: MaxBatch}
	got, err := DecodeHello(EncodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *h {
		t.Fatalf("got=%+v want=%+v", got, h)
	}
	a := &HelloAck{Version: Version2, MaxBatch: 16}
	gotA, err := DecodeHelloAck(EncodeHelloAck(a))
	if err != nil {
		t.Fatal(err)
	}
	if *gotA != *a {
		t.Fatalf("got=%+v want=%+v", gotA, a)
	}
}

func TestHelloToleratesTrailingBytes(t *testing.T) {
	// A future client may extend the handshake; old decoders must not choke.
	b := append(EncodeHello(&Hello{MaxVersion: 3, MaxBatch: 64}), 0xff, 0xee)
	h, err := DecodeHello(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxVersion != 3 || h.MaxBatch != 64 {
		t.Fatalf("hello=%+v", h)
	}
	if _, err := DecodeHello([]byte{1}); err == nil {
		t.Fatal("truncated hello accepted")
	}
	if _, err := DecodeHelloAck([]byte{0, 2, 0}); err == nil {
		t.Fatal("truncated hello-ack accepted")
	}
}

// --- batch joins ---

func batchFixture() *BatchJoinRequest {
	return &BatchJoinRequest{Joins: []JoinRequest{
		{Peer: 1, Addr: "10.0.0.1:9000", Path: []int32{5, 4, 0}},
		{Peer: 2, Addr: "10.0.0.2:9000", Path: []int32{7, 4, 0}},
		{Peer: 3, Addr: "", Path: []int32{0}},
	}}
}

func TestBatchJoinRequestRoundTrip(t *testing.T) {
	m := batchFixture()
	b, err := EncodeBatchJoinRequest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchJoinRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Joins) != len(m.Joins) {
		t.Fatalf("joins=%d", len(got.Joins))
	}
	for i := range m.Joins {
		if got.Joins[i].Peer != m.Joins[i].Peer || got.Joins[i].Addr != m.Joins[i].Addr {
			t.Fatalf("entry %d: %+v", i, got.Joins[i])
		}
		for k, r := range m.Joins[i].Path {
			if got.Joins[i].Path[k] != r {
				t.Fatalf("entry %d hop %d: %d", i, k, got.Joins[i].Path[k])
			}
		}
	}
}

func TestBatchJoinRequestLimits(t *testing.T) {
	if _, err := EncodeBatchJoinRequest(&BatchJoinRequest{}); !errors.Is(err, ErrLimit) {
		t.Fatalf("empty batch: %v", err)
	}
	big := &BatchJoinRequest{Joins: make([]JoinRequest, MaxBatch+1)}
	for i := range big.Joins {
		big.Joins[i] = JoinRequest{Peer: int64(i), Path: []int32{0}}
	}
	if _, err := EncodeBatchJoinRequest(big); !errors.Is(err, ErrLimit) {
		t.Fatalf("oversized batch: %v", err)
	}
	longPath := &BatchJoinRequest{Joins: []JoinRequest{{Peer: 1, Path: make([]int32, MaxPathLen+1)}}}
	if _, err := EncodeBatchJoinRequest(longPath); !errors.Is(err, ErrLimit) {
		t.Fatalf("long path: %v", err)
	}
	// Decoder side: a declared count over the cap must be rejected before
	// any allocation proportional to it.
	if _, err := DecodeBatchJoinRequest([]byte{0xff, 0xff}); !errors.Is(err, ErrLimit) {
		t.Fatalf("decoder count cap: %v", err)
	}
	if _, err := DecodeBatchJoinRequest([]byte{0, 0}); !errors.Is(err, ErrLimit) {
		t.Fatalf("decoder zero count: %v", err)
	}
}

func TestBatchJoinRequestTruncated(t *testing.T) {
	b, err := EncodeBatchJoinRequest(batchFixture())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := DecodeBatchJoinRequest(b[:cut]); err == nil {
			t.Fatalf("truncated batch at %d of %d accepted", cut, len(b))
		}
	}
	if _, err := DecodeBatchJoinRequest(append(b, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestBatchJoinResponseRoundTrip(t *testing.T) {
	m := &BatchJoinResponse{Results: []BatchJoinResult{
		{Neighbors: []Candidate{{Peer: 9, DTree: 2, Addr: "10.0.0.9:1"}}},
		{Code: CodeUnknownLandmark, Message: "no such landmark"},
		{},
	}}
	b, err := EncodeBatchJoinResponse(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchJoinResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 3 {
		t.Fatalf("results=%d", len(got.Results))
	}
	if got.Results[0].Code != 0 || len(got.Results[0].Neighbors) != 1 || got.Results[0].Neighbors[0].Addr != "10.0.0.9:1" {
		t.Fatalf("entry 0: %+v", got.Results[0])
	}
	if got.Results[1].Code != CodeUnknownLandmark || got.Results[1].Message != "no such landmark" {
		t.Fatalf("entry 1: %+v", got.Results[1])
	}
	if got.Results[2].Code != 0 || got.Results[2].Neighbors != nil {
		t.Fatalf("entry 2: %+v", got.Results[2])
	}
}

func TestBatchJoinResponseTruncated(t *testing.T) {
	m := &BatchJoinResponse{Results: []BatchJoinResult{
		{Neighbors: []Candidate{{Peer: 1, DTree: 1, Addr: "a"}, {Peer: 2, DTree: 3, Addr: "b"}}},
	}}
	b, err := EncodeBatchJoinResponse(m)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := DecodeBatchJoinResponse(b[:cut]); err == nil {
			t.Fatalf("truncated response at %d of %d accepted", cut, len(b))
		}
	}
}

// --- status ---

func statusFixture() *Status {
	return &Status{
		Role: RoleReplica, Shards: 4, Replicas: 3, Live: 11,
		PrimaryAddr: "10.0.0.1:4100",
		SnapshotSeq: 9000, WalTail: 250, ReplayMillis: 42,
		Applied: 9240, Head: 9250,
		Peers: 77, QueueDepth: 5, RequestsTotal: 123456, WalFsyncs: 890,
	}
}

func TestStatusRoundTrip(t *testing.T) {
	m := statusFixture()
	b, err := EncodeStatus(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStatus(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Fatalf("got=%+v want=%+v", got, m)
	}
}

// TestStatusDecodeOldPayloads: the status report has grown twice (the
// durability block, then the operational gauges); today's decoder must
// accept both older generations' payloads with the newer fields zero —
// that is the wire-compat contract that lets mixed-version deployments
// scrape each other.
func TestStatusDecodeOldPayloads(t *testing.T) {
	m := statusFixture()
	b, err := EncodeStatus(m)
	if err != nil {
		t.Fatal(err)
	}
	const gaugeBytes = 8 + 4 + 8 + 8    // Peers, QueueDepth, RequestsTotal, WalFsyncs
	const duraBytes = 8 + 8 + 4 + 8 + 8 // SnapshotSeq..Head

	// A pre-gauge node: payload stops after Head.
	got, err := DecodeStatus(b[:len(b)-gaugeBytes])
	if err != nil {
		t.Fatal(err)
	}
	want := *m
	want.Peers, want.QueueDepth, want.RequestsTotal, want.WalFsyncs = 0, 0, 0, 0
	if *got != want {
		t.Fatalf("pre-gauge decode got=%+v want=%+v", got, want)
	}

	// A pre-durability node: payload stops after PrimaryAddr.
	got, err = DecodeStatus(b[:len(b)-gaugeBytes-duraBytes])
	if err != nil {
		t.Fatal(err)
	}
	want = Status{Role: m.Role, Shards: m.Shards, Replicas: m.Replicas,
		Live: m.Live, PrimaryAddr: m.PrimaryAddr}
	if *got != want {
		t.Fatalf("pre-durability decode got=%+v want=%+v", got, want)
	}

	// Truncation INSIDE either appended block is corruption, not an old
	// node, and must be rejected.
	for _, cut := range []int{1, gaugeBytes - 1, gaugeBytes + 1, gaugeBytes + duraBytes - 1} {
		if _, err := DecodeStatus(b[:len(b)-cut]); err == nil {
			t.Fatalf("mid-field truncation (−%d bytes) accepted", cut)
		}
	}

	// Trailing bytes are a FUTURE extension and must be tolerated, so the
	// next block added to the report does not break this build's clients.
	got, err = DecodeStatus(append(append([]byte(nil), b...), 0xde, 0xad))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Fatalf("extended decode got=%+v want=%+v", got, m)
	}
}

func TestMsgTypeString(t *testing.T) {
	for typ := 1; typ < NumMsgTypes; typ++ {
		s := MsgType(typ).String()
		if s == "" || s == "unknown" {
			t.Fatalf("message type %d has no name", typ)
		}
	}
	if s := MsgType(250).String(); s != "unknown" {
		t.Fatalf("out-of-range type named %q", s)
	}
}
