// Package proto defines the wire protocol between proxdisc peers, the
// management server, and landmark probe responders.
//
// Frames are length-prefixed binary: a 4-byte big-endian payload length, a
// 1-byte message type, then the payload. Integers are big-endian; strings
// and slices carry 16-bit counts. Messages decode into preallocated structs
// without reflection, and the decoder validates every length against hard
// caps so a malicious peer cannot make the server allocate unbounded memory
// (the DecodingLayerParser mindset: bounded, allocation-light decoding).
//
// # Protocol versions
//
// Version 1 is strict lock-step: a connection carries one outstanding
// request at a time and the peer answers in order. Version 2 inserts an
// 8-byte request ID between the type byte and the payload of every frame
// (WriteFrameID/ReadFrameID), letting a client pipeline many requests over
// one connection and match responses by ID regardless of completion order.
//
// A connection starts in version 1. A client that wants version 2 sends
// MsgHello as its first request; a server that understands it answers
// MsgHelloAck and both sides switch to ID framing for every subsequent
// frame. A version-1 server instead answers MsgError (unknown message
// type), which the client takes as "stay on version 1" — so new clients
// interoperate with old servers and old clients (which never send hello)
// interoperate with new servers.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol versions negotiated via MsgHello.
const (
	// Version1 is the original lock-step protocol: unadorned frames, one
	// outstanding request per connection, responses in request order.
	Version1 uint16 = 1
	// Version2 adds an 8-byte request ID to every frame after hello
	// negotiation, enabling pipelining, out-of-order responses, and the
	// batched join messages.
	Version2 uint16 = 2
	// MaxVersion is the highest version this build speaks.
	MaxVersion = Version2
)

// MsgType identifies a frame's payload.
type MsgType byte

// Message types. Requests flow peer→server; responses server→peer.
const (
	// MsgError carries an error response.
	MsgError MsgType = iota + 1
	// MsgAck acknowledges a request with no payload to return.
	MsgAck
	// MsgLandmarksRequest asks the server for the landmark list.
	MsgLandmarksRequest
	// MsgLandmarksResponse returns landmark router IDs and probe addresses.
	MsgLandmarksResponse
	// MsgJoinRequest reports a peer's router path and overlay address.
	MsgJoinRequest
	// MsgJoinResponse returns the closest-peer list.
	MsgJoinResponse
	// MsgLookupRequest re-asks for a registered peer's closest peers.
	MsgLookupRequest
	// MsgLookupResponse answers a lookup.
	MsgLookupResponse
	// MsgLeaveRequest deregisters a peer.
	MsgLeaveRequest
	// MsgRefreshRequest is a liveness heartbeat.
	MsgRefreshRequest
	// MsgRedirect tells a client that the landmark its request targets is
	// owned by a different cluster node, whose address it carries.
	MsgRedirect
	// MsgForwardedJoinRequest is a join relayed between cluster nodes on a
	// client's behalf. It has the same payload as MsgJoinRequest; the
	// distinct type lets the receiving node answer locally and never relay
	// again, preventing forwarding loops.
	MsgForwardedJoinRequest
	// MsgHello opens protocol-version negotiation: the client's highest
	// supported version and batch limit. It is always sent version-1 framed.
	MsgHello
	// MsgHelloAck accepts negotiation with the chosen version and the
	// server's batch limit. Frames after it use the negotiated framing.
	MsgHelloAck
	// MsgBatchJoinRequest carries up to MaxBatch joins in one frame (the
	// flash-crowd path: many newcomers behind one NAT or agent).
	MsgBatchJoinRequest
	// MsgBatchJoinResponse answers a batch join entry-by-entry, in order.
	MsgBatchJoinResponse
	// MsgForwardedBatchJoinRequest is a batch join relayed between cluster
	// nodes. Same payload as MsgBatchJoinRequest; like its singular
	// counterpart, the receiving node answers locally and never relays
	// again, so stale shard maps cannot bounce batches between nodes.
	MsgForwardedBatchJoinRequest
	// MsgStatusRequest asks a node for its replication role and shard
	// layout, so clients and operators can tell a primary from a replica.
	MsgStatusRequest
	// MsgStatusResponse answers a status request.
	MsgStatusResponse
	// MsgFollowRequest subscribes the connection to the node's committed
	// op stream after a given sequence — the opening frame of a follower
	// process. Version-2 framing only; every stream frame that follows
	// carries this request's ID.
	MsgFollowRequest
	// MsgFollowHead announces the primary's committed head sequence: the
	// first answer to a follow request, and the idle stream's periodic
	// heartbeat (it keeps both sides' read deadlines fed and gives the
	// follower its lag denominator).
	MsgFollowHead
	// MsgOpRecords carries a batch of committed {sequence, op} records,
	// primary → follower.
	MsgOpRecords
	// MsgOpChunk carries one fragment of a committed op too large for a
	// single frame (a maximal batch join); the follower reassembles the
	// fragments by sequence before decoding.
	MsgOpChunk
	// MsgSnapshotChunk carries one fragment of a state snapshot, shipped
	// when a follower is behind the log's retention floor; the final
	// fragment names the sequence the snapshot covers.
	MsgSnapshotChunk
	// MsgOpAck reports the follower's applied offset back to the primary:
	// acknowledged-offset tracking for the bounded send window, and the
	// follower's share of the idle heartbeat.
	MsgOpAck
	// MsgSubscribeRequest registers a live query subscription — a landmark,
	// a peer, or a k-closest neighborhood — on the connection. Version-2
	// framing only; every event frame that follows carries this request's
	// ID.
	MsgSubscribeRequest
	// MsgSubscribeAck accepts a subscription, carrying the covering
	// committed sequence and (for k-closest queries) the initial answer
	// snapshot the pushed deltas apply to.
	MsgSubscribeAck
	// MsgSubEvent pushes one subscription delta: a peer entering, leaving,
	// or updating within the subscribed set, or a resync snapshot after the
	// subscriber fell behind the event stream.
	MsgSubEvent
	// MsgUnsubscribe cancels a subscription by its request ID; the server
	// answers MsgAck and stops pushing events.
	MsgUnsubscribe
)

// msgTypeNames names every message type, indexed by its wire value. The
// strings double as the stable "type" label of the per-message-type
// telemetry series, so they are lower_snake and never renamed.
var msgTypeNames = [...]string{
	MsgError:                     "error",
	MsgAck:                       "ack",
	MsgLandmarksRequest:          "landmarks_request",
	MsgLandmarksResponse:         "landmarks_response",
	MsgJoinRequest:               "join_request",
	MsgJoinResponse:              "join_response",
	MsgLookupRequest:             "lookup_request",
	MsgLookupResponse:            "lookup_response",
	MsgLeaveRequest:              "leave_request",
	MsgRefreshRequest:            "refresh_request",
	MsgRedirect:                  "redirect",
	MsgForwardedJoinRequest:      "forwarded_join_request",
	MsgHello:                     "hello",
	MsgHelloAck:                  "hello_ack",
	MsgBatchJoinRequest:          "batch_join_request",
	MsgBatchJoinResponse:         "batch_join_response",
	MsgForwardedBatchJoinRequest: "forwarded_batch_join_request",
	MsgStatusRequest:             "status_request",
	MsgStatusResponse:            "status_response",
	MsgFollowRequest:             "follow_request",
	MsgFollowHead:                "follow_head",
	MsgOpRecords:                 "op_records",
	MsgOpChunk:                   "op_chunk",
	MsgSnapshotChunk:             "snapshot_chunk",
	MsgOpAck:                     "op_ack",
	MsgSubscribeRequest:          "subscribe_request",
	MsgSubscribeAck:              "subscribe_ack",
	MsgSubEvent:                  "sub_event",
	MsgUnsubscribe:               "unsubscribe",
}

// NumMsgTypes is one past the highest defined message type — the size of
// a per-type lookup table.
const NumMsgTypes = int(MsgUnsubscribe) + 1

// String names the message type for logs and metric labels.
func (t MsgType) String() string {
	if int(t) < len(msgTypeNames) && msgTypeNames[t] != "" {
		return msgTypeNames[t]
	}
	return "unknown"
}

// Limits protect the decoder. They are generous relative to real usage
// (Internet paths are < 64 hops; answers are a handful of peers).
const (
	// MaxFrameSize bounds any frame payload.
	MaxFrameSize = 1 << 16
	// MaxPathLen bounds reported router paths.
	MaxPathLen = 256
	// MaxNeighbors bounds answer lists.
	MaxNeighbors = 256
	// MaxAddrLen bounds address strings.
	MaxAddrLen = 256
	// MaxLandmarks bounds the landmark list.
	MaxLandmarks = 1024
	// MaxBatch bounds the joins carried by one MsgBatchJoinRequest. Chosen
	// so a batch of realistic joins (paths well under 64 hops) and its
	// response (a handful of candidates per entry) both fit MaxFrameSize;
	// encoders still enforce the frame cap for adversarial inputs.
	MaxBatch = 32
	// MaxPipelineDepth bounds a version-2 connection's outstanding
	// requests. Clients cap their in-flight window here; servers size
	// their per-connection response queues to exactly this, so a
	// compliant client can never overflow one (overflowing marks the
	// connection a non-reading flooder, which servers drop).
	MaxPipelineDepth = 256
)

// Protocol errors.
var (
	ErrFrameTooLarge = errors.New("proto: frame exceeds MaxFrameSize")
	ErrTruncated     = errors.New("proto: truncated payload")
	ErrLimit         = errors.New("proto: field exceeds protocol limit")
)

// Error is the wire error response.
type Error struct {
	// Code is a machine-readable error class.
	Code uint16
	// Message is a human-readable description.
	Message string
}

// Error codes.
const (
	CodeInternal        uint16 = 1
	CodeUnknownLandmark uint16 = 2
	CodeUnknownPeer     uint16 = 3
	CodeBadRequest      uint16 = 4
	// CodeWrongShard rejects a forwarded join whose landmark this node does
	// not own — the sender's shard map is stale.
	CodeWrongShard uint16 = 5
	// CodeNotPrimary rejects a write sent to a replica node. The error
	// message carries the primary's TCP address when the replica knows it,
	// so the client can retry there (replica-aware failover).
	CodeNotPrimary uint16 = 6
	// CodeStaleEpoch rejects a write fenced at an out-of-date landmark
	// epoch: the landmark was handed between shards after the sender
	// resolved its owner. The sender recovers by re-resolving the owner
	// (its redirect cache is stale) and retrying at the current epoch.
	CodeStaleEpoch uint16 = 7
)

// Error implements the error interface so wire errors can be returned
// directly by clients.
func (e *Error) Error() string {
	return fmt.Sprintf("proxdisc server error %d: %s", e.Code, e.Message)
}

// Candidate is one closest-peer entry with the peer's overlay address so
// the newcomer can connect immediately.
type Candidate struct {
	Peer  int64
	DTree int32
	Addr  string
}

// JoinRequest reports a peer's identity, overlay address, and router path
// (peer-side first, ending at a landmark router ID).
type JoinRequest struct {
	Peer int64
	Addr string
	Path []int32
}

// JoinResponse returns the newcomer's closest peers.
type JoinResponse struct {
	Neighbors []Candidate
}

// LookupRequest re-queries the closest peers of a registered peer.
type LookupRequest struct {
	Peer int64
}

// LookupResponse answers a LookupRequest.
type LookupResponse struct {
	Neighbors []Candidate
}

// LeaveRequest deregisters a peer.
type LeaveRequest struct {
	Peer int64
}

// RefreshRequest heartbeats a peer.
type RefreshRequest struct {
	Peer int64
}

// LandmarksResponse lists the landmark router IDs and the UDP addresses of
// their probe responders (parallel slices).
type LandmarksResponse struct {
	Routers []int32
	Addrs   []string
}

// bufFree recycles frame-assembly and payload buffers across the encode
// and read hot paths. It is a bounded channel freelist rather than a
// sync.Pool: a nonblocking send/receive of a slice header allocates
// nothing, whereas sync.Pool.Put must box the header (&b escapes), which
// would put one 24-byte allocation back on every recycled frame. Buffers
// are bounded by MaxFrameSize plus the largest header, so the freelist
// retains at most ~16 MiB in the worst case and typically far less.
var bufFree = make(chan []byte, 256)

// GetBuf returns a buffer of length n from the frame buffer pool.
func GetBuf(n int) []byte {
	select {
	case b := <-bufFree:
		if cap(b) < n {
			// Too small for this frame; leave it for a smaller caller.
			select {
			case bufFree <- b:
			default:
			}
			return make([]byte, n)
		}
		return b[:n]
	default:
		if n < 512 {
			return make([]byte, n, 512)
		}
		return make([]byte, n)
	}
}

// PutBuf returns a buffer obtained from GetBuf, ReadFrame, or ReadFrameID
// to the pool. Callers must not retain any reference into it afterwards;
// the decoded messages never alias their payload, so recycling after
// decode is safe. When the freelist is full the buffer falls to the GC.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > MaxFrameSize+frameIDHeaderSize {
		return
	}
	select {
	case bufFree <- b[:0]:
	default:
	}
}

const (
	frameHeaderSize   = 5  // length + type
	frameIDHeaderSize = 13 // length + type + request ID
)

// WriteFrame writes one version-1 frame (type + payload) to w as a single
// Write call, assembling the frame in a pooled buffer.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload)+1 > MaxFrameSize {
		return ErrFrameTooLarge
	}
	frame := GetBuf(frameHeaderSize + len(payload))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)+1))
	frame[4] = byte(t)
	copy(frame[frameHeaderSize:], payload)
	_, err := w.Write(frame)
	PutBuf(frame)
	if err != nil {
		return fmt.Errorf("proto: write frame: %w", err)
	}
	return nil
}

// WriteFrameID writes one version-2 frame (type + request ID + payload) to
// w as a single Write call. The declared length covers the type byte, the
// 8-byte ID, and the payload.
func WriteFrameID(w io.Writer, t MsgType, id uint64, payload []byte) error {
	if len(payload)+9 > MaxFrameSize {
		return ErrFrameTooLarge
	}
	frame := GetBuf(frameIDHeaderSize + len(payload))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)+9))
	frame[4] = byte(t)
	binary.BigEndian.PutUint64(frame[5:13], id)
	copy(frame[frameIDHeaderSize:], payload)
	_, err := w.Write(frame)
	PutBuf(frame)
	if err != nil {
		return fmt.Errorf("proto: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one version-1 frame from r. The returned payload comes
// from the frame buffer pool and is owned by the caller, who may recycle
// it with PutBuf once fully decoded.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:4])
	if size < 1 || size > MaxFrameSize {
		return 0, nil, ErrFrameTooLarge
	}
	t := MsgType(hdr[4])
	payload := GetBuf(int(size - 1))
	if _, err := io.ReadFull(r, payload); err != nil {
		PutBuf(payload)
		return 0, nil, fmt.Errorf("proto: read payload: %w", err)
	}
	return t, payload, nil
}

// ReadFrameID reads one version-2 frame from r. The returned payload comes
// from the frame buffer pool and is owned by the caller, who may recycle
// it with PutBuf once fully decoded.
func ReadFrameID(r io.Reader) (MsgType, uint64, []byte, error) {
	var hdr [13]byte
	if _, err := io.ReadFull(r, hdr[:5]); err != nil {
		return 0, 0, nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:4])
	if size < 9 || size > MaxFrameSize {
		return 0, 0, nil, ErrFrameTooLarge
	}
	t := MsgType(hdr[4])
	if _, err := io.ReadFull(r, hdr[5:13]); err != nil {
		return 0, 0, nil, fmt.Errorf("proto: read request id: %w", err)
	}
	id := binary.BigEndian.Uint64(hdr[5:13])
	payload := GetBuf(int(size - 9))
	if _, err := io.ReadFull(r, payload); err != nil {
		PutBuf(payload)
		return 0, 0, nil, fmt.Errorf("proto: read payload: %w", err)
	}
	return t, id, payload, nil
}

// --- encoding primitives ---

type encoder struct{ buf []byte }

func (e *encoder) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) i32(v int32)  { e.u32(uint32(v)) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) str(s string) error {
	if len(s) > MaxAddrLen {
		return fmt.Errorf("%w: string length %d", ErrLimit, len(s))
	}
	e.u16(uint16(len(s)))
	e.buf = append(e.buf, s...)
	return nil
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) u8() (byte, error) {
	if d.remaining() < 1 {
		return 0, ErrTruncated
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if d.remaining() < 2 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) i32() (int32, error) { v, err := d.u32(); return int32(v), err }
func (d *decoder) i64() (int64, error) { v, err := d.u64(); return int64(v), err }

func (d *decoder) str() (string, error) {
	n, err := d.u16()
	if err != nil {
		return "", err
	}
	if int(n) > MaxAddrLen {
		return "", fmt.Errorf("%w: string length %d", ErrLimit, n)
	}
	if d.remaining() < int(n) {
		return "", ErrTruncated
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// strInto reads a string into *s, keeping the existing value when the
// wire bytes are unchanged so a reused decode target allocates nothing in
// steady state (the string(b) != *s comparison does not allocate).
func (d *decoder) strInto(s *string) error {
	n, err := d.u16()
	if err != nil {
		return err
	}
	if int(n) > MaxAddrLen {
		return fmt.Errorf("%w: string length %d", ErrLimit, n)
	}
	if d.remaining() < int(n) {
		return ErrTruncated
	}
	if b := d.buf[d.off : d.off+int(n)]; string(b) != *s {
		*s = string(b)
	}
	d.off += int(n)
	return nil
}

func (d *decoder) finish() error {
	if d.remaining() != 0 {
		return fmt.Errorf("proto: %d trailing bytes", d.remaining())
	}
	return nil
}

// --- message codecs ---

// EncodeError encodes an Error payload.
func EncodeError(e *Error) []byte {
	enc := encoder{}
	enc.u16(e.Code)
	msg := e.Message
	if len(msg) > MaxAddrLen {
		msg = msg[:MaxAddrLen]
	}
	_ = enc.str(msg)
	return enc.buf
}

// DecodeError decodes an Error payload.
func DecodeError(b []byte) (*Error, error) {
	d := decoder{buf: b}
	code, err := d.u16()
	if err != nil {
		return nil, err
	}
	msg, err := d.str()
	if err != nil {
		return nil, err
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return &Error{Code: code, Message: msg}, nil
}

// EncodeJoinRequest encodes a JoinRequest payload.
func EncodeJoinRequest(m *JoinRequest) ([]byte, error) {
	return AppendJoinRequest(make([]byte, 0, 16+len(m.Addr)+4*len(m.Path)), m)
}

// AppendJoinRequest encodes m onto dst and returns the extended slice —
// the allocation-free form of EncodeJoinRequest for callers holding a
// pooled buffer (GetBuf/PutBuf).
func AppendJoinRequest(dst []byte, m *JoinRequest) ([]byte, error) {
	if len(m.Path) > MaxPathLen {
		return nil, fmt.Errorf("%w: path length %d", ErrLimit, len(m.Path))
	}
	enc := encoder{buf: dst}
	enc.i64(m.Peer)
	if err := enc.str(m.Addr); err != nil {
		return nil, err
	}
	enc.u16(uint16(len(m.Path)))
	for _, r := range m.Path {
		enc.i32(r)
	}
	return enc.buf, nil
}

// DecodeJoinRequest decodes a JoinRequest payload.
func DecodeJoinRequest(b []byte) (*JoinRequest, error) {
	m := &JoinRequest{}
	if err := DecodeJoinRequestInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeJoinRequestInto decodes a JoinRequest payload into m, reusing
// m.Path's capacity and keeping m.Addr when its bytes are unchanged — the
// allocation-free decode for callers reusing a request struct across a
// stream of joins.
func DecodeJoinRequestInto(m *JoinRequest, b []byte) error {
	d := decoder{buf: b}
	if err := decodeJoinRequestPrefix(&d, m); err != nil {
		return err
	}
	return d.finish()
}

// decodeJoinRequestPrefix reads the JoinRequest fields into m, leaving
// the decoder positioned after them — shared by DecodeJoinRequestInto
// (which then requires the payload be exhausted) and the forwarded-join
// decoder (which reads the optional trailing fencing epoch first).
func decodeJoinRequestPrefix(d *decoder, m *JoinRequest) error {
	var err error
	if m.Peer, err = d.i64(); err != nil {
		return err
	}
	if err = d.strInto(&m.Addr); err != nil {
		return err
	}
	n, err := d.u16()
	if err != nil {
		return err
	}
	if int(n) > MaxPathLen {
		return fmt.Errorf("%w: path length %d", ErrLimit, n)
	}
	if m.Path == nil || cap(m.Path) < int(n) {
		m.Path = make([]int32, n)
	} else {
		m.Path = m.Path[:n]
	}
	for i := range m.Path {
		if m.Path[i], err = d.i32(); err != nil {
			return err
		}
	}
	return nil
}

// encodeCandidates is shared by join and lookup responses.
func encodeCandidates(cands []Candidate) ([]byte, error) {
	if len(cands) > MaxNeighbors {
		return nil, fmt.Errorf("%w: %d neighbours", ErrLimit, len(cands))
	}
	// Candidate answers are server hot-path payloads: they go to the
	// connection writer, which recycles them after the frame is copied out
	// (callers outside that path simply let the buffer go to the GC).
	enc := encoder{buf: GetBuf(0)[:0]}
	enc.u16(uint16(len(cands)))
	for _, c := range cands {
		enc.i64(c.Peer)
		enc.i32(c.DTree)
		if err := enc.str(c.Addr); err != nil {
			PutBuf(enc.buf)
			return nil, err
		}
	}
	return enc.buf, nil
}

func decodeCandidates(b []byte) ([]Candidate, error) {
	d := decoder{buf: b}
	n, err := d.u16()
	if err != nil {
		return nil, err
	}
	if int(n) > MaxNeighbors {
		return nil, fmt.Errorf("%w: %d neighbours", ErrLimit, n)
	}
	cands := make([]Candidate, n)
	for i := range cands {
		if cands[i].Peer, err = d.i64(); err != nil {
			return nil, err
		}
		if cands[i].DTree, err = d.i32(); err != nil {
			return nil, err
		}
		if cands[i].Addr, err = d.str(); err != nil {
			return nil, err
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return cands, nil
}

// EncodeJoinResponse encodes a JoinResponse payload.
func EncodeJoinResponse(m *JoinResponse) ([]byte, error) { return encodeCandidates(m.Neighbors) }

// DecodeJoinResponse decodes a JoinResponse payload.
func DecodeJoinResponse(b []byte) (*JoinResponse, error) {
	cands, err := decodeCandidates(b)
	if err != nil {
		return nil, err
	}
	return &JoinResponse{Neighbors: cands}, nil
}

// EncodeLookupResponse encodes a LookupResponse payload.
func EncodeLookupResponse(m *LookupResponse) ([]byte, error) { return encodeCandidates(m.Neighbors) }

// DecodeLookupResponse decodes a LookupResponse payload.
func DecodeLookupResponse(b []byte) (*LookupResponse, error) {
	cands, err := decodeCandidates(b)
	if err != nil {
		return nil, err
	}
	return &LookupResponse{Neighbors: cands}, nil
}

// encodePeerID is shared by the single-field request messages.
func encodePeerID(peer int64) []byte {
	enc := encoder{buf: make([]byte, 0, 8)}
	enc.i64(peer)
	return enc.buf
}

func decodePeerID(b []byte) (int64, error) {
	d := decoder{buf: b}
	v, err := d.i64()
	if err != nil {
		return 0, err
	}
	if err := d.finish(); err != nil {
		return 0, err
	}
	return v, nil
}

// EncodeLookupRequest encodes a LookupRequest payload.
func EncodeLookupRequest(m *LookupRequest) []byte { return encodePeerID(m.Peer) }

// DecodeLookupRequest decodes a LookupRequest payload.
func DecodeLookupRequest(b []byte) (*LookupRequest, error) {
	v, err := decodePeerID(b)
	if err != nil {
		return nil, err
	}
	return &LookupRequest{Peer: v}, nil
}

// EncodeLeaveRequest encodes a LeaveRequest payload.
func EncodeLeaveRequest(m *LeaveRequest) []byte { return encodePeerID(m.Peer) }

// DecodeLeaveRequest decodes a LeaveRequest payload.
func DecodeLeaveRequest(b []byte) (*LeaveRequest, error) {
	v, err := decodePeerID(b)
	if err != nil {
		return nil, err
	}
	return &LeaveRequest{Peer: v}, nil
}

// EncodeRefreshRequest encodes a RefreshRequest payload.
func EncodeRefreshRequest(m *RefreshRequest) []byte { return encodePeerID(m.Peer) }

// DecodeRefreshRequest decodes a RefreshRequest payload.
func DecodeRefreshRequest(b []byte) (*RefreshRequest, error) {
	v, err := decodePeerID(b)
	if err != nil {
		return nil, err
	}
	return &RefreshRequest{Peer: v}, nil
}

// EncodeLandmarksResponse encodes a LandmarksResponse payload.
func EncodeLandmarksResponse(m *LandmarksResponse) ([]byte, error) {
	if len(m.Routers) != len(m.Addrs) {
		return nil, fmt.Errorf("proto: %d routers but %d addrs", len(m.Routers), len(m.Addrs))
	}
	if len(m.Routers) > MaxLandmarks {
		return nil, fmt.Errorf("%w: %d landmarks", ErrLimit, len(m.Routers))
	}
	enc := encoder{}
	enc.u16(uint16(len(m.Routers)))
	for i := range m.Routers {
		enc.i32(m.Routers[i])
		if err := enc.str(m.Addrs[i]); err != nil {
			return nil, err
		}
	}
	return enc.buf, nil
}

// DecodeLandmarksResponse decodes a LandmarksResponse payload.
func DecodeLandmarksResponse(b []byte) (*LandmarksResponse, error) {
	d := decoder{buf: b}
	n, err := d.u16()
	if err != nil {
		return nil, err
	}
	if int(n) > MaxLandmarks {
		return nil, fmt.Errorf("%w: %d landmarks", ErrLimit, n)
	}
	m := &LandmarksResponse{
		Routers: make([]int32, n),
		Addrs:   make([]string, n),
	}
	for i := 0; i < int(n); i++ {
		if m.Routers[i], err = d.i32(); err != nil {
			return nil, err
		}
		if m.Addrs[i], err = d.str(); err != nil {
			return nil, err
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// Redirect points a client at the cluster node owning the landmark its
// request targeted.
type Redirect struct {
	// Addr is the TCP address of the owning cluster node.
	Addr string
	// Epoch is the redirecting node's view of the landmark's fencing
	// epoch; zero when the node does not track epochs. A client that
	// forwards it with the retried write gets a loud CodeStaleEpoch
	// (instead of a silent mis-placed write) if the landmark moves again
	// in between. Encoded as an optional trailing field: absent on the
	// wire means zero, so pre-epoch peers interoperate unchanged.
	Epoch uint64
}

// EncodeRedirect encodes a Redirect payload.
func EncodeRedirect(m *Redirect) ([]byte, error) {
	enc := encoder{buf: make([]byte, 0, 10+len(m.Addr))}
	if err := enc.str(m.Addr); err != nil {
		return nil, err
	}
	if m.Epoch != 0 {
		enc.u64(m.Epoch)
	}
	return enc.buf, nil
}

// DecodeRedirect decodes a Redirect payload.
func DecodeRedirect(b []byte) (*Redirect, error) {
	d := decoder{buf: b}
	m := &Redirect{}
	var err error
	if m.Addr, err = d.str(); err != nil {
		return nil, err
	}
	if d.remaining() >= 8 {
		if m.Epoch, err = d.u64(); err != nil {
			return nil, err
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// EncodeForwardedJoinRequest encodes a node-to-node forwarded join. The
// payload is a JoinRequest plus an optional trailing fencing epoch (zero
// is omitted, so the bytes sent by and to pre-epoch nodes are unchanged);
// only the frame type differs from a client join.
func EncodeForwardedJoinRequest(m *JoinRequest) ([]byte, error) { return EncodeJoinRequest(m) }

// EncodeForwardedJoinRequestFenced encodes a forwarded join stamped with
// a landmark fencing epoch; zero degrades to the unfenced classic form.
func EncodeForwardedJoinRequestFenced(m *JoinRequest, epoch uint64) ([]byte, error) {
	b, err := EncodeJoinRequest(m)
	if err != nil {
		return nil, err
	}
	if epoch != 0 {
		enc := encoder{buf: b}
		enc.u64(epoch)
		b = enc.buf
	}
	return b, nil
}

// DecodeForwardedJoinRequest decodes a forwarded join.
func DecodeForwardedJoinRequest(b []byte) (*JoinRequest, error) { return DecodeJoinRequest(b) }

// Hello opens version negotiation (always version-1 framed).
type Hello struct {
	// MaxVersion is the highest protocol version the client speaks.
	MaxVersion uint16
	// MaxBatch is the largest batch join the client will send.
	MaxBatch uint16
}

// HelloAck accepts negotiation.
type HelloAck struct {
	// Version is the version both sides use from the next frame on: the
	// minimum of the two MaxVersions.
	Version uint16
	// MaxBatch is the largest batch join the server accepts (0 = none).
	MaxBatch uint16
}

// EncodeHello encodes a Hello payload.
func EncodeHello(m *Hello) []byte {
	enc := encoder{buf: make([]byte, 0, 4)}
	enc.u16(m.MaxVersion)
	enc.u16(m.MaxBatch)
	return enc.buf
}

// DecodeHello decodes a Hello payload. Trailing bytes are tolerated so
// future versions can extend the handshake without breaking old servers.
func DecodeHello(b []byte) (*Hello, error) {
	d := decoder{buf: b}
	m := &Hello{}
	var err error
	if m.MaxVersion, err = d.u16(); err != nil {
		return nil, err
	}
	if m.MaxBatch, err = d.u16(); err != nil {
		return nil, err
	}
	return m, nil
}

// EncodeHelloAck encodes a HelloAck payload.
func EncodeHelloAck(m *HelloAck) []byte {
	enc := encoder{buf: make([]byte, 0, 4)}
	enc.u16(m.Version)
	enc.u16(m.MaxBatch)
	return enc.buf
}

// DecodeHelloAck decodes a HelloAck payload, tolerating trailing bytes
// like DecodeHello.
func DecodeHelloAck(b []byte) (*HelloAck, error) {
	d := decoder{buf: b}
	m := &HelloAck{}
	var err error
	if m.Version, err = d.u16(); err != nil {
		return nil, err
	}
	if m.MaxBatch, err = d.u16(); err != nil {
		return nil, err
	}
	return m, nil
}

// BatchJoinRequest carries up to MaxBatch joins in one frame.
type BatchJoinRequest struct {
	Joins []JoinRequest
}

// BatchJoinResult answers one entry of a batch join: either a neighbour
// list (Code 0) or a wire error code with detail.
type BatchJoinResult struct {
	// Code is 0 on success, else one of the Code* error classes.
	Code uint16
	// Message carries the error detail when Code is non-zero.
	Message string
	// Neighbors is the closest-peer answer when Code is 0.
	Neighbors []Candidate
}

// BatchJoinResponse answers a BatchJoinRequest entry-by-entry, in request
// order.
type BatchJoinResponse struct {
	Results []BatchJoinResult
}

// EncodeBatchJoinRequest encodes a BatchJoinRequest payload.
func EncodeBatchJoinRequest(m *BatchJoinRequest) ([]byte, error) {
	if len(m.Joins) == 0 || len(m.Joins) > MaxBatch {
		return nil, fmt.Errorf("%w: batch of %d joins", ErrLimit, len(m.Joins))
	}
	enc := encoder{buf: make([]byte, 0, 64*len(m.Joins))}
	enc.u16(uint16(len(m.Joins)))
	for i := range m.Joins {
		j := &m.Joins[i]
		if len(j.Path) > MaxPathLen {
			return nil, fmt.Errorf("%w: path length %d", ErrLimit, len(j.Path))
		}
		enc.i64(j.Peer)
		if err := enc.str(j.Addr); err != nil {
			return nil, err
		}
		enc.u16(uint16(len(j.Path)))
		for _, r := range j.Path {
			enc.i32(r)
		}
	}
	if len(enc.buf)+9 > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	return enc.buf, nil
}

// DecodeBatchJoinRequest decodes a BatchJoinRequest payload.
func DecodeBatchJoinRequest(b []byte) (*BatchJoinRequest, error) {
	d := decoder{buf: b}
	n, err := d.u16()
	if err != nil {
		return nil, err
	}
	if n == 0 || int(n) > MaxBatch {
		return nil, fmt.Errorf("%w: batch of %d joins", ErrLimit, n)
	}
	m := &BatchJoinRequest{Joins: make([]JoinRequest, n)}
	for i := range m.Joins {
		j := &m.Joins[i]
		if j.Peer, err = d.i64(); err != nil {
			return nil, err
		}
		if j.Addr, err = d.str(); err != nil {
			return nil, err
		}
		hops, err := d.u16()
		if err != nil {
			return nil, err
		}
		if int(hops) > MaxPathLen {
			return nil, fmt.Errorf("%w: path length %d", ErrLimit, hops)
		}
		j.Path = make([]int32, hops)
		for k := range j.Path {
			if j.Path[k], err = d.i32(); err != nil {
				return nil, err
			}
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// EncodeForwardedBatchJoinRequest encodes a node-to-node forwarded batch
// join. The payload is identical to a BatchJoinRequest; only the frame
// type differs.
func EncodeForwardedBatchJoinRequest(m *BatchJoinRequest) ([]byte, error) {
	return EncodeBatchJoinRequest(m)
}

// DecodeForwardedBatchJoinRequest decodes a forwarded batch join.
func DecodeForwardedBatchJoinRequest(b []byte) (*BatchJoinRequest, error) {
	return DecodeBatchJoinRequest(b)
}

// EncodeBatchJoinResponse encodes a BatchJoinResponse payload.
func EncodeBatchJoinResponse(m *BatchJoinResponse) ([]byte, error) {
	if len(m.Results) == 0 || len(m.Results) > MaxBatch {
		return nil, fmt.Errorf("%w: batch of %d results", ErrLimit, len(m.Results))
	}
	// Like encodeCandidates, batch answers are pooled: the connection
	// writer recycles the payload once the frame is copied out.
	enc := encoder{buf: GetBuf(0)[:0]}
	enc.u16(uint16(len(m.Results)))
	for i := range m.Results {
		r := &m.Results[i]
		enc.u16(r.Code)
		msg := r.Message
		if len(msg) > MaxAddrLen {
			msg = msg[:MaxAddrLen]
		}
		if err := enc.str(msg); err != nil {
			PutBuf(enc.buf)
			return nil, err
		}
		if len(r.Neighbors) > MaxNeighbors {
			PutBuf(enc.buf)
			return nil, fmt.Errorf("%w: %d neighbours", ErrLimit, len(r.Neighbors))
		}
		enc.u16(uint16(len(r.Neighbors)))
		for _, c := range r.Neighbors {
			enc.i64(c.Peer)
			enc.i32(c.DTree)
			if err := enc.str(c.Addr); err != nil {
				PutBuf(enc.buf)
				return nil, err
			}
		}
	}
	if len(enc.buf)+9 > MaxFrameSize {
		PutBuf(enc.buf)
		return nil, ErrFrameTooLarge
	}
	return enc.buf, nil
}

// DecodeBatchJoinResponse decodes a BatchJoinResponse payload.
func DecodeBatchJoinResponse(b []byte) (*BatchJoinResponse, error) {
	d := decoder{buf: b}
	n, err := d.u16()
	if err != nil {
		return nil, err
	}
	if n == 0 || int(n) > MaxBatch {
		return nil, fmt.Errorf("%w: batch of %d results", ErrLimit, n)
	}
	m := &BatchJoinResponse{Results: make([]BatchJoinResult, n)}
	for i := range m.Results {
		r := &m.Results[i]
		if r.Code, err = d.u16(); err != nil {
			return nil, err
		}
		if r.Message, err = d.str(); err != nil {
			return nil, err
		}
		cands, err := d.u16()
		if err != nil {
			return nil, err
		}
		if int(cands) > MaxNeighbors {
			return nil, fmt.Errorf("%w: %d neighbours", ErrLimit, cands)
		}
		if cands > 0 {
			r.Neighbors = make([]Candidate, cands)
			for k := range r.Neighbors {
				if r.Neighbors[k].Peer, err = d.i64(); err != nil {
					return nil, err
				}
				if r.Neighbors[k].DTree, err = d.i32(); err != nil {
					return nil, err
				}
				if r.Neighbors[k].Addr, err = d.str(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// Node roles carried by Status.
const (
	// RolePrimary marks a node that accepts writes (also the role of every
	// standalone, unreplicated server).
	RolePrimary uint8 = 1
	// RoleReplica marks a read-only replica that redirects writes to its
	// primary.
	RoleReplica uint8 = 2
)

// Status reports a node's replication role and shard layout.
type Status struct {
	// Role is RolePrimary or RoleReplica.
	Role uint8
	// Shards and Replicas describe the management plane behind this node:
	// the shard count and the configured copies per shard (both 1 for a
	// standalone server).
	Shards   uint16
	Replicas uint16
	// Live is the number of live replicas across all shards.
	Live uint16
	// PrimaryAddr is the TCP address of the primary node, set on replicas.
	PrimaryAddr string

	// Durability and replication telemetry, appended by this build's
	// servers and zero when talking to an older node (the decoder
	// tolerates their absence).

	// SnapshotSeq is the covering op sequence of the node's last on-disk
	// snapshot; WalTail is the number of log records beyond it (the tail
	// a restart replays, and the followers' catch-up buffer).
	SnapshotSeq uint64
	WalTail     uint64
	// ReplayMillis is how long the node's last restart spent replaying
	// that tail.
	ReplayMillis uint32
	// Applied and Head describe the node's position on the replication
	// stream: on a follower, the last op sequence applied locally and the
	// last head announced by its primary (lag = Head − Applied); on a
	// durable primary, both equal the committed head.
	Applied uint64
	Head    uint64

	// Operational gauges appended by telemetry-aware builds, zero when
	// talking to an older node (the decoder tolerates their absence
	// exactly as it tolerates the durability block's).

	// Peers is the number of peers registered with the node's backend.
	Peers uint64
	// QueueDepth is the worker pool's queued pipelined requests at the
	// moment the status was served.
	QueueDepth uint32
	// RequestsTotal is the number of requests the front end has served
	// across all message types.
	RequestsTotal uint64
	// WalFsyncs is the write-ahead log's fsync count (0 on non-durable
	// nodes).
	WalFsyncs uint64
}

// EncodeStatus encodes a Status payload.
func EncodeStatus(m *Status) ([]byte, error) {
	enc := encoder{buf: make([]byte, 0, 45+len(m.PrimaryAddr))}
	enc.buf = append(enc.buf, m.Role)
	enc.u16(m.Shards)
	enc.u16(m.Replicas)
	enc.u16(m.Live)
	if err := enc.str(m.PrimaryAddr); err != nil {
		return nil, err
	}
	enc.u64(m.SnapshotSeq)
	enc.u64(m.WalTail)
	enc.u32(m.ReplayMillis)
	enc.u64(m.Applied)
	enc.u64(m.Head)
	enc.u64(m.Peers)
	enc.u32(m.QueueDepth)
	enc.u64(m.RequestsTotal)
	enc.u64(m.WalFsyncs)
	return enc.buf, nil
}

// DecodeStatus decodes a Status payload. Trailing bytes are tolerated so
// future versions can extend the report without breaking old clients.
func DecodeStatus(b []byte) (*Status, error) {
	d := decoder{buf: b}
	if d.remaining() < 1 {
		return nil, ErrTruncated
	}
	m := &Status{Role: d.buf[0]}
	d.off = 1
	var err error
	if m.Shards, err = d.u16(); err != nil {
		return nil, err
	}
	if m.Replicas, err = d.u16(); err != nil {
		return nil, err
	}
	if m.Live, err = d.u16(); err != nil {
		return nil, err
	}
	if m.PrimaryAddr, err = d.str(); err != nil {
		return nil, err
	}
	if d.remaining() == 0 {
		return m, nil // a pre-telemetry node: the new fields stay zero
	}
	if m.SnapshotSeq, err = d.u64(); err != nil {
		return nil, err
	}
	if m.WalTail, err = d.u64(); err != nil {
		return nil, err
	}
	if m.ReplayMillis, err = d.u32(); err != nil {
		return nil, err
	}
	if m.Applied, err = d.u64(); err != nil {
		return nil, err
	}
	if m.Head, err = d.u64(); err != nil {
		return nil, err
	}
	if d.remaining() == 0 {
		return m, nil // a pre-gauge node: the operational gauges stay zero
	}
	if m.Peers, err = d.u64(); err != nil {
		return nil, err
	}
	if m.QueueDepth, err = d.u32(); err != nil {
		return nil, err
	}
	if m.RequestsTotal, err = d.u64(); err != nil {
		return nil, err
	}
	if m.WalFsyncs, err = d.u64(); err != nil {
		return nil, err
	}
	return m, nil
}

// ProbePacket is the 12-byte UDP landmark probe: a magic tag plus a nonce
// echoed back verbatim. RTT = receive time − send time.
const (
	// ProbeMagic tags proxdisc probe datagrams.
	ProbeMagic uint32 = 0x70647072 // "pdpr"
	// ProbeSize is the datagram length.
	ProbeSize = 12
)

// EncodeProbe builds a probe datagram with the given nonce.
func EncodeProbe(nonce uint64) []byte {
	b := make([]byte, ProbeSize)
	binary.BigEndian.PutUint32(b[:4], ProbeMagic)
	binary.BigEndian.PutUint64(b[4:], nonce)
	return b
}

// DecodeProbe validates a probe datagram and returns its nonce.
func DecodeProbe(b []byte) (uint64, error) {
	if len(b) != ProbeSize {
		return 0, fmt.Errorf("proto: probe size %d", len(b))
	}
	if binary.BigEndian.Uint32(b[:4]) != ProbeMagic {
		return 0, errors.New("proto: bad probe magic")
	}
	return binary.BigEndian.Uint64(b[4:]), nil
}
