package proto

import (
	"reflect"
	"testing"

	"proxdisc/internal/op"
	"proxdisc/internal/topology"
)

// TestJoinOpBridge pins the wire↔op bridge: a join payload decodes into
// the same op that EncodeJoinOp re-encodes, and the struct decoder agrees
// with the op decoder field by field.
func TestJoinOpBridge(t *testing.T) {
	payload, err := EncodeJoinRequest(&JoinRequest{Peer: 42, Addr: "10.0.0.9:41", Path: []int32{7, 3, 100}})
	if err != nil {
		t.Fatal(err)
	}
	o, err := DecodeJoinOp(payload)
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != op.KindJoin || o.Time != 0 {
		t.Fatalf("decoded op %+v: want unstamped KindJoin", o)
	}
	want := op.JoinEntry{Peer: 42, Addr: "10.0.0.9:41", Path: []topology.NodeID{7, 3, 100}}
	if !reflect.DeepEqual(o.Join, want) {
		t.Fatalf("entry %+v, want %+v", o.Join, want)
	}
	re, err := EncodeJoinOp(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re, payload) {
		t.Fatalf("EncodeJoinOp is not the inverse of DecodeJoinOp:\n %x\n %x", re, payload)
	}
	if _, err := EncodeJoinOp(op.Leave(1)); err == nil {
		t.Fatal("EncodeJoinOp accepted a non-join op")
	}
	if _, err := DecodeJoinOp([]byte{1, 2}); err == nil {
		t.Fatal("DecodeJoinOp accepted garbage")
	}
}

func TestBatchJoinOpBridge(t *testing.T) {
	payload, err := EncodeBatchJoinRequest(&BatchJoinRequest{Joins: []JoinRequest{
		{Peer: 1, Addr: "a:1", Path: []int32{5, 0}},
		{Peer: 2, Addr: "a:2", Path: []int32{6, 5, 0}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	o, err := DecodeBatchJoinOp(payload)
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != op.KindBatchJoin || len(o.Batch) != 2 {
		t.Fatalf("decoded %+v", o)
	}
	if o.Batch[1].Peer != 2 || o.Batch[1].Addr != "a:2" ||
		!reflect.DeepEqual(o.Batch[1].Path, []topology.NodeID{6, 5, 0}) {
		t.Fatalf("entry %+v", o.Batch[1])
	}
	if _, err := DecodeBatchJoinOp([]byte{0xff}); err == nil {
		t.Fatal("DecodeBatchJoinOp accepted garbage")
	}
}

func TestPeerOpBridges(t *testing.T) {
	lo, err := DecodeLeaveOp(EncodeLeaveRequest(&LeaveRequest{Peer: 77}))
	if err != nil || lo.Kind != op.KindLeave || lo.Peer != 77 {
		t.Fatalf("leave op %+v err=%v", lo, err)
	}
	ro, err := DecodeRefreshOp(EncodeRefreshRequest(&RefreshRequest{Peer: 78}))
	if err != nil || ro.Kind != op.KindRefresh || ro.Peer != 78 || ro.Time != 0 {
		t.Fatalf("refresh op %+v err=%v", ro, err)
	}
	if _, err := DecodeLeaveOp(nil); err == nil {
		t.Fatal("DecodeLeaveOp accepted an empty payload")
	}
	if _, err := DecodeRefreshOp([]byte{1}); err == nil {
		t.Fatal("DecodeRefreshOp accepted a truncated payload")
	}
}
