// Native fuzz targets for the frame reader and the join decoders: the
// surfaces a malicious peer controls byte-for-byte. Each target checks two
// properties — no panic on arbitrary input, and encode/decode round-trip
// stability for inputs the decoder accepts.
package proto

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame throws raw bytes at both frame readers. Whatever is
// accepted must re-encode to a frame that reads back identically.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, MsgJoinRequest, []byte{1, 2, 3})
	f.Add(seed.Bytes())
	seed.Reset()
	_ = WriteFrameID(&seed, MsgJoinResponse, 77, []byte{9})
	f.Add(seed.Bytes())
	f.Add([]byte{0, 0, 0, 1, byte(MsgAck)})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0})
	f.Add([]byte{0, 0, 0, 9, byte(MsgHello), 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if typ, payload, err := ReadFrame(bytes.NewReader(data)); err == nil {
			var out bytes.Buffer
			if err := WriteFrame(&out, typ, payload); err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
			typ2, payload2, err := ReadFrame(&out)
			if err != nil || typ2 != typ || !bytes.Equal(payload2, payload) {
				t.Fatalf("v1 round trip diverged: %v %v/%v", err, typ, typ2)
			}
		}
		if typ, id, payload, err := ReadFrameID(bytes.NewReader(data)); err == nil {
			var out bytes.Buffer
			if err := WriteFrameID(&out, typ, id, payload); err != nil {
				t.Fatalf("re-encode of accepted v2 frame failed: %v", err)
			}
			typ2, id2, payload2, err := ReadFrameID(&out)
			if err != nil || typ2 != typ || id2 != id || !bytes.Equal(payload2, payload) {
				t.Fatalf("v2 round trip diverged: %v id=%d/%d", err, id, id2)
			}
		}
	})
}

// FuzzDecodeJoinRequest checks the singular join decoder: malformed
// request IDs in the wrapping frame are covered by FuzzReadFrame; here the
// payload itself is adversarial.
func FuzzDecodeJoinRequest(f *testing.F) {
	good, _ := EncodeJoinRequest(&JoinRequest{Peer: 42, Addr: "198.51.100.7:9000", Path: []int32{3, 2, 1, 0}})
	f.Add(good)
	f.Add([]byte{})
	f.Add(binary.BigEndian.AppendUint16(nil, MaxPathLen+1))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeJoinRequest(data)
		if err != nil {
			return
		}
		if len(m.Path) > MaxPathLen || len(m.Addr) > MaxAddrLen {
			t.Fatalf("decoder accepted over-limit message: %d hops, %d addr bytes", len(m.Path), len(m.Addr))
		}
		b, err := EncodeJoinRequest(m)
		if err != nil {
			t.Fatalf("re-encode of accepted join failed: %v", err)
		}
		if !bytes.Equal(b, data) {
			t.Fatalf("join encoding not canonical: %x vs %x", b, data)
		}
	})
}

// FuzzDecodeBatchJoinRequest targets the batch decoder: truncated batch
// payloads, lying counts, and per-entry limit violations.
func FuzzDecodeBatchJoinRequest(f *testing.F) {
	good, _ := EncodeBatchJoinRequest(&BatchJoinRequest{Joins: []JoinRequest{
		{Peer: 1, Addr: "a", Path: []int32{1, 0}},
		{Peer: 2, Addr: "b", Path: []int32{2, 0}},
	}})
	f.Add(good)
	f.Add([]byte{0, 0})
	f.Add([]byte{0xff, 0xff, 1, 2, 3})
	if len(good) > 3 {
		f.Add(good[:len(good)-3])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeBatchJoinRequest(data)
		if err != nil {
			return
		}
		if len(m.Joins) == 0 || len(m.Joins) > MaxBatch {
			t.Fatalf("decoder accepted batch of %d joins", len(m.Joins))
		}
		b, err := EncodeBatchJoinRequest(m)
		if err != nil {
			t.Fatalf("re-encode of accepted batch failed: %v", err)
		}
		if !bytes.Equal(b, data) {
			t.Fatalf("batch encoding not canonical")
		}
	})
}

// FuzzOpStream throws raw bytes at the replication-stream decoders — the
// frames a follower accepts from whatever answers the primary's address.
// Accepted op-record batches must re-encode byte-identically (the stream
// rides the canonical op codec), and accepted chunks must round-trip.
// FuzzSubscribe throws raw bytes at the subscription decoders, matching
// FuzzOpStream: no panics, and — for the strict event decoder — canonical
// re-encoding of anything accepted. SubscribeRequest/SubscribeAck/
// Unsubscribe tolerate trailing bytes by design (forward compatibility),
// so for those the round-trip check compares re-encodings instead of raw
// input.
func FuzzSubscribe(f *testing.F) {
	if b, err := EncodeSubscribeRequest(&SubscribeRequest{Kind: QueryKClosest, Peer: 42, K: 8}); err == nil {
		f.Add(b)
	}
	if b, err := EncodeSubscribeAck(&SubscribeAck{Seq: 7, Neighbors: []Candidate{{Peer: 3, DTree: 1, Addr: "x:1"}}}); err == nil {
		f.Add(b)
	}
	if b, err := EncodeSubEvent(&SubEvent{Seq: 4, Kind: EventEnter, Cand: Candidate{Peer: 9, DTree: 3, Addr: "a:1"}}); err == nil {
		f.Add(b)
	}
	if b, err := EncodeSubEvent(&SubEvent{Seq: 9, Kind: EventResync, Neighbors: []Candidate{{Peer: 1, DTree: 1, Addr: "b"}}}); err == nil {
		f.Add(b)
	}
	f.Add(EncodeUnsubscribe(&Unsubscribe{SubID: 5}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeSubscribeRequest(data); err == nil {
			re, err := EncodeSubscribeRequest(m)
			if err != nil {
				t.Fatalf("re-encode of accepted subscribe request failed: %v", err)
			}
			if m2, err := DecodeSubscribeRequest(re); err != nil || *m2 != *m {
				t.Fatalf("subscribe request round trip diverged: %v", err)
			}
		}
		if m, err := DecodeSubscribeAck(data); err == nil {
			if len(m.Neighbors) > MaxNeighbors {
				t.Fatalf("ack accepted %d neighbours", len(m.Neighbors))
			}
			if _, err := EncodeSubscribeAck(m); err != nil {
				t.Fatalf("re-encode of accepted ack failed: %v", err)
			}
		}
		if m, err := DecodeSubEvent(data); err == nil {
			re, err := EncodeSubEvent(m)
			if err != nil {
				t.Fatalf("re-encode of accepted event failed: %v", err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("sub event encoding not canonical")
			}
		}
		if m, err := DecodeUnsubscribe(data); err == nil {
			re := EncodeUnsubscribe(m)
			if m2, err := DecodeUnsubscribe(re); err != nil || m2.SubID != m.SubID {
				t.Fatalf("unsubscribe round trip diverged: %v", err)
			}
		}
	})
}

func FuzzOpStream(f *testing.F) {
	f.Add(EncodeFollowRequest(&FollowRequest{After: 7}))
	f.Add(EncodeFollowHead(&FollowHead{Head: 9}))
	f.Add(EncodeOpAck(&OpAck{Seq: 3}))
	if rec, err := EncodeOpRecords(&OpRecords{Records: []OpRecord{{Seq: 1, Data: []byte{3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}}}}); err == nil {
		f.Add(rec)
	}
	if ch, err := EncodeStreamChunk(&StreamChunk{Seq: 5, Final: true, Data: []byte("snap")}); err == nil {
		f.Add(ch)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeFollowRequest(data)
		_, _ = DecodeFollowHead(data)
		_, _ = DecodeOpAck(data)
		if m, err := DecodeOpRecords(data); err == nil {
			re, err := EncodeOpRecords(m)
			if err != nil {
				t.Fatalf("re-encode of accepted op records failed: %v", err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("op records round trip diverged")
			}
		}
		if m, err := DecodeStreamChunk(data); err == nil {
			re, err := EncodeStreamChunk(m)
			if err != nil {
				t.Fatalf("re-encode of accepted chunk failed: %v", err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("stream chunk round trip diverged")
			}
		}
	})
}
