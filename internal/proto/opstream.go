package proto

import (
	"fmt"

	"proxdisc/internal/op"
)

// This file is the wire form of the replication stream (the MsgOpStream
// family): a follower process subscribes to a primary's committed op log
// with MsgFollowRequest and receives MsgOpRecords / MsgOpChunk /
// MsgSnapshotChunk frames, acknowledging its applied offset with MsgOpAck.
// Record payloads are the canonical op encoding (package op) exactly as
// the write-ahead log stores them, so the bytes a follower applies are the
// bytes the primary committed — one codec from wire to disk.

// Op-stream limits.
const (
	// MaxStreamRecords bounds the records of one MsgOpRecords frame.
	MaxStreamRecords = 256
	// MaxChunkData bounds the data of one MsgOpChunk or MsgSnapshotChunk
	// fragment, leaving room for the fragment header inside MaxFrameSize.
	MaxChunkData = MaxFrameSize - 64
)

// FollowRequest subscribes to the committed op stream.
type FollowRequest struct {
	// After is the last sequence the follower has applied; the stream
	// resumes strictly after it (0 = from the beginning of history, which
	// the primary typically serves as snapshot + tail).
	After uint64
}

// EncodeFollowRequest encodes a FollowRequest payload.
func EncodeFollowRequest(m *FollowRequest) []byte {
	enc := encoder{buf: make([]byte, 0, 8)}
	enc.u64(m.After)
	return enc.buf
}

// DecodeFollowRequest decodes a FollowRequest payload. Trailing bytes are
// tolerated so future versions can extend the subscription.
func DecodeFollowRequest(b []byte) (*FollowRequest, error) {
	d := decoder{buf: b}
	m := &FollowRequest{}
	var err error
	if m.After, err = d.u64(); err != nil {
		return nil, err
	}
	return m, nil
}

// FollowHead announces the primary's committed head sequence.
type FollowHead struct {
	// Head is the last committed sequence on the primary.
	Head uint64
}

// EncodeFollowHead encodes a FollowHead payload.
func EncodeFollowHead(m *FollowHead) []byte {
	enc := encoder{buf: make([]byte, 0, 8)}
	enc.u64(m.Head)
	return enc.buf
}

// DecodeFollowHead decodes a FollowHead payload, tolerating trailing
// bytes like DecodeFollowRequest.
func DecodeFollowHead(b []byte) (*FollowHead, error) {
	d := decoder{buf: b}
	m := &FollowHead{}
	var err error
	if m.Head, err = d.u64(); err != nil {
		return nil, err
	}
	return m, nil
}

// OpAck reports the follower's applied offset.
type OpAck struct {
	// Seq is the highest sequence the follower has applied.
	Seq uint64
}

// EncodeOpAck encodes an OpAck payload.
func EncodeOpAck(m *OpAck) []byte {
	enc := encoder{buf: make([]byte, 0, 8)}
	enc.u64(m.Seq)
	return enc.buf
}

// DecodeOpAck decodes an OpAck payload, tolerating trailing bytes.
func DecodeOpAck(b []byte) (*OpAck, error) {
	d := decoder{buf: b}
	m := &OpAck{}
	var err error
	if m.Seq, err = d.u64(); err != nil {
		return nil, err
	}
	return m, nil
}

// OpRecord is one committed operation on the stream: its sequence and its
// canonical op encoding.
type OpRecord struct {
	Seq  uint64
	Data []byte
}

// OpRecords is a batch of committed records, in ascending sequence order.
type OpRecords struct {
	Records []OpRecord
}

// EncodeOpRecords encodes an OpRecords payload:
//
//	count(2) then per record seq(8) len(4) data
//
// It enforces the frame budget, so callers batch greedily and flush when
// encoding reports the frame is full.
func EncodeOpRecords(m *OpRecords) ([]byte, error) {
	if len(m.Records) == 0 || len(m.Records) > MaxStreamRecords {
		return nil, fmt.Errorf("%w: %d stream records", ErrLimit, len(m.Records))
	}
	size := 2
	for i := range m.Records {
		size += 12 + len(m.Records[i].Data)
	}
	if size+9 > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	// The payload comes from the frame pool: the op-stream sender hands it
	// to the connection writer, which recycles it after the frame is
	// copied out — assembling a MsgOpRecords frame allocates nothing in
	// steady state.
	enc := encoder{buf: GetBuf(size)[:0]}
	enc.u16(uint16(len(m.Records)))
	for i := range m.Records {
		r := &m.Records[i]
		if len(r.Data) > op.MaxEncodedSize {
			PutBuf(enc.buf)
			return nil, fmt.Errorf("%w: stream record of %d bytes", ErrLimit, len(r.Data))
		}
		enc.u64(r.Seq)
		enc.u32(uint32(len(r.Data)))
		enc.buf = append(enc.buf, r.Data...)
	}
	return enc.buf, nil
}

// DecodeOpRecords decodes an OpRecords payload. Record data is copied out
// of the frame buffer, so callers may recycle the payload immediately.
func DecodeOpRecords(b []byte) (*OpRecords, error) {
	d := decoder{buf: b}
	n, err := d.u16()
	if err != nil {
		return nil, err
	}
	if n == 0 || int(n) > MaxStreamRecords {
		return nil, fmt.Errorf("%w: %d stream records", ErrLimit, n)
	}
	m := &OpRecords{Records: make([]OpRecord, n)}
	for i := range m.Records {
		r := &m.Records[i]
		if r.Seq, err = d.u64(); err != nil {
			return nil, err
		}
		size, err := d.u32()
		if err != nil {
			return nil, err
		}
		if int(size) > op.MaxEncodedSize {
			return nil, fmt.Errorf("%w: stream record of %d bytes", ErrLimit, size)
		}
		if d.remaining() < int(size) {
			return nil, ErrTruncated
		}
		r.Data = append([]byte(nil), d.buf[d.off:d.off+int(size)]...)
		d.off += int(size)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// StreamChunk is one fragment of an oversized stream payload: an op too
// big for a single frame (MsgOpChunk) or a snapshot (MsgSnapshotChunk).
type StreamChunk struct {
	// Seq is the sequence the reassembled payload belongs to: the op's
	// sequence for an op chunk, the covering sequence for a snapshot (for
	// snapshots it is authoritative only on the final fragment).
	Seq uint64
	// Final marks the last fragment.
	Final bool
	// Data is this fragment's bytes.
	Data []byte
}

// EncodeStreamChunk encodes a StreamChunk payload: seq(8) final(1) data.
func EncodeStreamChunk(m *StreamChunk) ([]byte, error) {
	if len(m.Data) > MaxChunkData {
		return nil, fmt.Errorf("%w: chunk of %d bytes", ErrLimit, len(m.Data))
	}
	enc := encoder{buf: make([]byte, 0, 9+len(m.Data))}
	enc.u64(m.Seq)
	if m.Final {
		enc.buf = append(enc.buf, 1)
	} else {
		enc.buf = append(enc.buf, 0)
	}
	enc.buf = append(enc.buf, m.Data...)
	return enc.buf, nil
}

// DecodeStreamChunk decodes a StreamChunk payload. Data is copied out of
// the frame buffer.
func DecodeStreamChunk(b []byte) (*StreamChunk, error) {
	d := decoder{buf: b}
	m := &StreamChunk{}
	var err error
	if m.Seq, err = d.u64(); err != nil {
		return nil, err
	}
	flag, err := d.u8()
	if err != nil {
		return nil, err
	}
	if flag > 1 {
		return nil, fmt.Errorf("proto: bad chunk final flag %d", flag)
	}
	m.Final = flag == 1
	if d.remaining() > MaxChunkData {
		return nil, fmt.Errorf("%w: chunk of %d bytes", ErrLimit, d.remaining())
	}
	m.Data = append([]byte(nil), d.buf[d.off:]...)
	return m, nil
}
