package proto

import (
	"bytes"
	"errors"
	"testing"

	"proxdisc/internal/op"
)

func TestFollowRequestRoundTrip(t *testing.T) {
	for _, after := range []uint64{0, 1, 1 << 40} {
		b := EncodeFollowRequest(&FollowRequest{After: after})
		m, err := DecodeFollowRequest(b)
		if err != nil {
			t.Fatal(err)
		}
		if m.After != after {
			t.Fatalf("after %d, want %d", m.After, after)
		}
	}
	if _, err := DecodeFollowRequest([]byte{1, 2}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated request decoded: %v", err)
	}
}

func TestFollowHeadAndAckRoundTrip(t *testing.T) {
	h, err := DecodeFollowHead(EncodeFollowHead(&FollowHead{Head: 77}))
	if err != nil || h.Head != 77 {
		t.Fatalf("head %v err %v", h, err)
	}
	a, err := DecodeOpAck(EncodeOpAck(&OpAck{Seq: 99}))
	if err != nil || a.Seq != 99 {
		t.Fatalf("ack %v err %v", a, err)
	}
}

func TestOpRecordsRoundTrip(t *testing.T) {
	rec1, err := op.Encode(op.Join(1, wireToPath([]int32{5, 0}), "10.0.0.1:7000", 42))
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := op.Encode(op.Leave(1))
	if err != nil {
		t.Fatal(err)
	}
	in := &OpRecords{Records: []OpRecord{{Seq: 10, Data: rec1}, {Seq: 11, Data: rec2}}}
	payload, err := EncodeOpRecords(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeOpRecords(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != 2 {
		t.Fatalf("decoded %d records", len(out.Records))
	}
	for i := range in.Records {
		if out.Records[i].Seq != in.Records[i].Seq || !bytes.Equal(out.Records[i].Data, in.Records[i].Data) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// The decoded ops must round-trip through the canonical codec.
	if _, err := op.Decode(out.Records[0].Data); err != nil {
		t.Fatal(err)
	}
}

func TestOpRecordsLimits(t *testing.T) {
	if _, err := EncodeOpRecords(&OpRecords{}); err == nil {
		t.Fatal("empty batch encoded")
	}
	big := make([]OpRecord, MaxStreamRecords+1)
	for i := range big {
		big[i] = OpRecord{Seq: uint64(i + 1), Data: []byte{byte(op.KindLeave), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}}
	}
	if _, err := EncodeOpRecords(&OpRecords{Records: big}); err == nil {
		t.Fatal("oversized batch encoded")
	}
	// A frame-budget overflow must be reported, not silently truncated.
	huge := OpRecord{Seq: 1, Data: make([]byte, MaxFrameSize)}
	if _, err := EncodeOpRecords(&OpRecords{Records: []OpRecord{huge}}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("huge record: %v", err)
	}
	// Truncated payloads fail loudly.
	payload, err := EncodeOpRecords(&OpRecords{Records: []OpRecord{{Seq: 3, Data: []byte{1, 2, 3}}}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(payload); cut++ {
		if _, err := DecodeOpRecords(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
}

func TestStreamChunkRoundTrip(t *testing.T) {
	in := &StreamChunk{Seq: 123, Final: true, Data: []byte("snapshot-bytes")}
	payload, err := EncodeStreamChunk(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeStreamChunk(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || out.Final != in.Final || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("chunk mismatch: %+v", out)
	}
	if _, err := DecodeStreamChunk(payload[:5]); err == nil {
		t.Fatal("truncated chunk decoded")
	}
	bad := append([]byte(nil), payload...)
	bad[8] = 7 // final flag out of range
	if _, err := DecodeStreamChunk(bad); err == nil {
		t.Fatal("bad final flag decoded")
	}
	if _, err := EncodeStreamChunk(&StreamChunk{Data: make([]byte, MaxChunkData+1)}); err == nil {
		t.Fatal("oversized chunk encoded")
	}
}
