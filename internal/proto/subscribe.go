package proto

import "fmt"

// This file is the wire form of the push-based read plane (the
// MsgSubscribe family): a client registers a live query with
// MsgSubscribeRequest and receives MsgSubEvent deltas as committed ops
// change the answer, cancelling with MsgUnsubscribe. Like the op stream,
// subscriptions ride the version-2 framing: every event frame carries the
// subscribe request's ID, so any number of subscriptions and ordinary
// pipelined requests share one connection.

// Query kinds a subscription can register.
const (
	// QueryLandmark watches every peer registered under one landmark tree.
	QueryLandmark uint8 = 1
	// QueryPeer watches one peer's registration (joins, refreshes,
	// departures).
	QueryPeer uint8 = 2
	// QueryKClosest watches the k-closest answer set of a registered peer —
	// the push form of MsgLookupRequest.
	QueryKClosest uint8 = 3
)

// Subscription event kinds.
const (
	// EventEnter reports a peer entering the subscribed set.
	EventEnter uint8 = 1
	// EventLeave reports a peer leaving the subscribed set. A k-closest
	// subscription whose subject itself deregistered reports the subject.
	EventLeave uint8 = 2
	// EventUpdate reports a peer already in the set whose record changed
	// (distance, address, or liveness).
	EventUpdate uint8 = 3
	// EventResync replaces the subscriber's whole cached set: the server
	// dropped deltas for a slow consumer (or the subscription was just
	// re-established) and ships the current full answer instead.
	EventResync uint8 = 4
)

// SubscribeRequest registers a live query on the connection.
type SubscribeRequest struct {
	// Kind is the query kind (QueryLandmark, QueryPeer, QueryKClosest).
	Kind uint8
	// Peer is the subject of QueryPeer and QueryKClosest.
	Peer int64
	// Landmark is the subject of QueryLandmark.
	Landmark int32
	// K is the QueryKClosest answer size; 0 means the server's configured
	// neighbor count (the only size a cached lookup can cover).
	K uint16
}

// EncodeSubscribeRequest encodes a SubscribeRequest payload.
func EncodeSubscribeRequest(m *SubscribeRequest) ([]byte, error) {
	if m.Kind < QueryLandmark || m.Kind > QueryKClosest {
		return nil, fmt.Errorf("proto: bad query kind %d", m.Kind)
	}
	if int(m.K) > MaxNeighbors {
		return nil, fmt.Errorf("%w: k of %d", ErrLimit, m.K)
	}
	enc := encoder{buf: make([]byte, 0, 15)}
	enc.buf = append(enc.buf, m.Kind)
	enc.i64(m.Peer)
	enc.i32(m.Landmark)
	enc.u16(m.K)
	return enc.buf, nil
}

// DecodeSubscribeRequest decodes a SubscribeRequest payload. Trailing
// bytes are tolerated so future versions can extend the query.
func DecodeSubscribeRequest(b []byte) (*SubscribeRequest, error) {
	d := decoder{buf: b}
	m := &SubscribeRequest{}
	var err error
	if m.Kind, err = d.u8(); err != nil {
		return nil, err
	}
	if m.Kind < QueryLandmark || m.Kind > QueryKClosest {
		return nil, fmt.Errorf("proto: bad query kind %d", m.Kind)
	}
	if m.Peer, err = d.i64(); err != nil {
		return nil, err
	}
	if m.Landmark, err = d.i32(); err != nil {
		return nil, err
	}
	if m.K, err = d.u16(); err != nil {
		return nil, err
	}
	if int(m.K) > MaxNeighbors {
		return nil, fmt.Errorf("%w: k of %d", ErrLimit, m.K)
	}
	return m, nil
}

// SubscribeAck accepts a subscription.
type SubscribeAck struct {
	// Seq is the committed sequence the initial snapshot covers (0 when the
	// serving node cannot name one).
	Seq uint64
	// Neighbors is the query's current answer: the k-closest set for
	// QueryKClosest (possibly empty), empty for the other kinds.
	Neighbors []Candidate
}

// EncodeSubscribeAck encodes a SubscribeAck payload.
func EncodeSubscribeAck(m *SubscribeAck) ([]byte, error) {
	enc := encoder{buf: make([]byte, 0, 10+24*len(m.Neighbors))}
	enc.u64(m.Seq)
	if err := appendCandidates(&enc, m.Neighbors); err != nil {
		return nil, err
	}
	return enc.buf, nil
}

// DecodeSubscribeAck decodes a SubscribeAck payload. Trailing bytes are
// tolerated — like DecodeStatus, the ack is the message newer servers
// extend, and an older client must keep decoding the fields it knows.
func DecodeSubscribeAck(b []byte) (*SubscribeAck, error) {
	d := decoder{buf: b}
	m := &SubscribeAck{}
	var err error
	if m.Seq, err = d.u64(); err != nil {
		return nil, err
	}
	if m.Neighbors, err = readCandidates(&d); err != nil {
		return nil, err
	}
	return m, nil
}

// SubEvent is one pushed subscription delta.
type SubEvent struct {
	// Seq is the committed sequence of the op the event derives from.
	Seq uint64
	// Kind is the event kind (EventEnter, EventLeave, EventUpdate,
	// EventResync).
	Kind uint8
	// Cand is the affected peer for enter/leave/update events; a leave
	// carries the peer ID with a zero distance and empty address.
	Cand Candidate
	// Neighbors is the full refreshed answer set of an EventResync.
	Neighbors []Candidate
}

// EncodeSubEvent encodes a SubEvent payload:
//
//	seq(8) kind(1) then candidate for enter/leave/update,
//	or count(2) candidate... for resync.
func EncodeSubEvent(m *SubEvent) ([]byte, error) {
	enc := encoder{buf: make([]byte, 0, 32)}
	enc.u64(m.Seq)
	enc.buf = append(enc.buf, m.Kind)
	switch m.Kind {
	case EventEnter, EventLeave, EventUpdate:
		enc.i64(m.Cand.Peer)
		enc.i32(m.Cand.DTree)
		if err := enc.str(m.Cand.Addr); err != nil {
			return nil, err
		}
	case EventResync:
		if err := appendCandidates(&enc, m.Neighbors); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("proto: bad event kind %d", m.Kind)
	}
	return enc.buf, nil
}

// DecodeSubEvent decodes a SubEvent payload.
func DecodeSubEvent(b []byte) (*SubEvent, error) {
	d := decoder{buf: b}
	m := &SubEvent{}
	var err error
	if m.Seq, err = d.u64(); err != nil {
		return nil, err
	}
	if m.Kind, err = d.u8(); err != nil {
		return nil, err
	}
	switch m.Kind {
	case EventEnter, EventLeave, EventUpdate:
		if m.Cand.Peer, err = d.i64(); err != nil {
			return nil, err
		}
		if m.Cand.DTree, err = d.i32(); err != nil {
			return nil, err
		}
		if m.Cand.Addr, err = d.str(); err != nil {
			return nil, err
		}
	case EventResync:
		if m.Neighbors, err = readCandidates(&d); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("proto: bad event kind %d", m.Kind)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// Unsubscribe cancels a subscription.
type Unsubscribe struct {
	// SubID is the request ID the subscription was registered under.
	SubID uint64
}

// EncodeUnsubscribe encodes an Unsubscribe payload.
func EncodeUnsubscribe(m *Unsubscribe) []byte {
	enc := encoder{buf: make([]byte, 0, 8)}
	enc.u64(m.SubID)
	return enc.buf
}

// DecodeUnsubscribe decodes an Unsubscribe payload, tolerating trailing
// bytes.
func DecodeUnsubscribe(b []byte) (*Unsubscribe, error) {
	d := decoder{buf: b}
	m := &Unsubscribe{}
	var err error
	if m.SubID, err = d.u64(); err != nil {
		return nil, err
	}
	return m, nil
}

// appendCandidates encodes a counted candidate list onto an encoder —
// the in-message form of encodeCandidates, shared by the subscription
// messages whose candidates follow other fields.
func appendCandidates(enc *encoder, cands []Candidate) error {
	if len(cands) > MaxNeighbors {
		return fmt.Errorf("%w: %d neighbours", ErrLimit, len(cands))
	}
	enc.u16(uint16(len(cands)))
	for _, c := range cands {
		enc.i64(c.Peer)
		enc.i32(c.DTree)
		if err := enc.str(c.Addr); err != nil {
			return err
		}
	}
	return nil
}

// readCandidates decodes a counted candidate list from a decoder mid-
// message.
func readCandidates(d *decoder) ([]Candidate, error) {
	n, err := d.u16()
	if err != nil {
		return nil, err
	}
	if int(n) > MaxNeighbors {
		return nil, fmt.Errorf("%w: %d neighbours", ErrLimit, n)
	}
	cands := make([]Candidate, n)
	for i := range cands {
		if cands[i].Peer, err = d.i64(); err != nil {
			return nil, err
		}
		if cands[i].DTree, err = d.i32(); err != nil {
			return nil, err
		}
		if cands[i].Addr, err = d.str(); err != nil {
			return nil, err
		}
	}
	return cands, nil
}
