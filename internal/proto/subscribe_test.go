package proto

import (
	"bytes"
	"reflect"
	"testing"
)

func TestSubscribeRequestRoundTrip(t *testing.T) {
	cases := []SubscribeRequest{
		{Kind: QueryKClosest, Peer: 42, K: 8},
		{Kind: QueryPeer, Peer: -7},
		{Kind: QueryLandmark, Landmark: 3},
		{Kind: QueryKClosest, Peer: 1}, // K=0: server default
	}
	for _, want := range cases {
		b, err := EncodeSubscribeRequest(&want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, err := DecodeSubscribeRequest(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if *got != want {
			t.Fatalf("round trip diverged: %+v vs %+v", *got, want)
		}
	}
	if _, err := EncodeSubscribeRequest(&SubscribeRequest{Kind: 9}); err == nil {
		t.Fatal("bad kind accepted by encoder")
	}
	if _, err := DecodeSubscribeRequest([]byte{0, 1, 2}); err == nil {
		t.Fatal("bad kind accepted by decoder")
	}
}

func TestSubscribeAckRoundTrip(t *testing.T) {
	want := SubscribeAck{Seq: 99, Neighbors: []Candidate{
		{Peer: 1, DTree: 2, Addr: "192.0.2.1:7000"},
		{Peer: 5, DTree: 4, Addr: "192.0.2.5:7000"},
	}}
	b, err := EncodeSubscribeAck(&want)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSubscribeAck(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Seq != want.Seq || !reflect.DeepEqual(got.Neighbors, want.Neighbors) {
		t.Fatalf("round trip diverged: %+v vs %+v", got, want)
	}

	empty, err := DecodeSubscribeAck(mustEncodeSubscribeAck(t, &SubscribeAck{Seq: 1}))
	if err != nil {
		t.Fatalf("decode empty ack: %v", err)
	}
	if len(empty.Neighbors) != 0 {
		t.Fatalf("empty ack grew neighbors: %+v", empty.Neighbors)
	}
}

// TestSubscribeAckDecodeTolerance pins the compatibility contract: a newer
// server may append fields to the ack, and this client must still decode
// the prefix it understands.
func TestSubscribeAckDecodeTolerance(t *testing.T) {
	b := mustEncodeSubscribeAck(t, &SubscribeAck{Seq: 7, Neighbors: []Candidate{{Peer: 3, DTree: 1, Addr: "x"}}})
	extended := append(append([]byte{}, b...), 0xde, 0xad, 0xbe, 0xef)
	got, err := DecodeSubscribeAck(extended)
	if err != nil {
		t.Fatalf("extended ack rejected: %v", err)
	}
	if got.Seq != 7 || len(got.Neighbors) != 1 || got.Neighbors[0].Peer != 3 {
		t.Fatalf("extended ack decoded wrong: %+v", got)
	}
}

func mustEncodeSubscribeAck(t *testing.T, m *SubscribeAck) []byte {
	t.Helper()
	b, err := EncodeSubscribeAck(m)
	if err != nil {
		t.Fatalf("encode ack: %v", err)
	}
	return b
}

func TestSubEventRoundTrip(t *testing.T) {
	cases := []SubEvent{
		{Seq: 4, Kind: EventEnter, Cand: Candidate{Peer: 9, DTree: 3, Addr: "a:1"}},
		{Seq: 5, Kind: EventLeave, Cand: Candidate{Peer: 9}},
		{Seq: 6, Kind: EventUpdate, Cand: Candidate{Peer: 9, DTree: 2, Addr: "a:2"}},
		{Seq: 7, Kind: EventResync, Neighbors: []Candidate{{Peer: 1, DTree: 1, Addr: "b:1"}, {Peer: 2, DTree: 2, Addr: "b:2"}}},
		{Seq: 8, Kind: EventResync, Neighbors: []Candidate{}},
	}
	for _, want := range cases {
		b, err := EncodeSubEvent(&want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, err := DecodeSubEvent(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got.Seq != want.Seq || got.Kind != want.Kind || got.Cand != want.Cand ||
			len(got.Neighbors) != len(want.Neighbors) ||
			(len(want.Neighbors) > 0 && !reflect.DeepEqual(got.Neighbors, want.Neighbors)) {
			t.Fatalf("round trip diverged: %+v vs %+v", got, want)
		}
	}
	if _, err := EncodeSubEvent(&SubEvent{Kind: 0}); err == nil {
		t.Fatal("bad event kind accepted by encoder")
	}
	// SubEvent is strict: trailing garbage after a delta is a framing bug,
	// not forward compatibility.
	b, _ := EncodeSubEvent(&cases[0])
	if _, err := DecodeSubEvent(append(append([]byte{}, b...), 1)); err == nil {
		t.Fatal("trailing bytes accepted on event")
	}
}

func TestUnsubscribeRoundTrip(t *testing.T) {
	b := EncodeUnsubscribe(&Unsubscribe{SubID: 12345})
	got, err := DecodeUnsubscribe(b)
	if err != nil || got.SubID != 12345 {
		t.Fatalf("round trip diverged: %+v %v", got, err)
	}
	if _, err := DecodeUnsubscribe([]byte{1, 2}); err == nil {
		t.Fatal("short unsubscribe accepted")
	}
}

func TestSubscribeMsgTypeNames(t *testing.T) {
	for typ, want := range map[MsgType]string{
		MsgSubscribeRequest: "subscribe_request",
		MsgSubscribeAck:     "subscribe_ack",
		MsgSubEvent:         "sub_event",
		MsgUnsubscribe:      "unsubscribe",
	} {
		if got := typ.String(); got != want {
			t.Fatalf("MsgType(%d).String() = %q, want %q", typ, got, want)
		}
	}
	if !bytes.Equal([]byte(MsgType(NumMsgTypes).String()), []byte("unknown")) {
		t.Fatal("one past the last type must stringify as unknown")
	}
}
