package proto

import (
	"fmt"

	"proxdisc/internal/op"
	"proxdisc/internal/pathtree"
	"proxdisc/internal/topology"
)

// This file bridges wire payloads and the canonical typed operation
// (package op): servers decode write-class requests directly into ops and
// dispatch those, so the message a client sent, the command the replicas
// apply, and the record the write-ahead log persists are one value with
// one meaning. The wire layouts themselves are unchanged — version-1
// clients keep interoperating — only the decode target is unified.

// DecodeJoinOp decodes a MsgJoinRequest (or MsgForwardedJoinRequest)
// payload into a KindJoin op. The op is unstamped; the applying backend
// stamps it from its own clock.
func DecodeJoinOp(b []byte) (op.Op, error) {
	m, err := DecodeJoinRequest(b)
	if err != nil {
		return op.Op{}, err
	}
	return op.Join(pathtree.PeerID(m.Peer), wireToPath(m.Path), m.Addr, 0), nil
}

// EncodeJoinOp encodes a KindJoin op as a MsgJoinRequest payload — the
// inverse bridge, used when a node forwards a decoded join to the cluster
// node owning its landmark.
func EncodeJoinOp(o op.Op) ([]byte, error) {
	if o.Kind != op.KindJoin {
		return nil, fmt.Errorf("proto: cannot encode op kind %d as a join request", o.Kind)
	}
	return EncodeJoinRequest(&JoinRequest{
		Peer: int64(o.Join.Peer),
		Addr: o.Join.Addr,
		Path: pathToWire(o.Join.Path),
	})
}

// EncodeForwardedJoinOp encodes a KindJoin op as a MsgForwardedJoinRequest
// payload: a JoinRequest plus the op's fencing epoch as an optional
// trailing u64 (omitted when zero, so the bytes a pre-epoch node sees are
// exactly a JoinRequest). The forwarding node stamps the epoch from the
// Redirect (or its own table) that told it where to send the join; the
// owner rejects with CodeStaleEpoch if the landmark has moved since.
func EncodeForwardedJoinOp(o op.Op) ([]byte, error) {
	b, err := EncodeJoinOp(o)
	if err != nil {
		return nil, err
	}
	if o.Epoch != 0 {
		enc := encoder{buf: b}
		enc.u64(o.Epoch)
		b = enc.buf
	}
	return b, nil
}

// DecodeForwardedJoinOp decodes a MsgForwardedJoinRequest payload into a
// KindJoin op, picking up the optional trailing fencing epoch (absent
// means zero: unfenced, the pre-epoch wire form).
func DecodeForwardedJoinOp(b []byte) (op.Op, error) {
	d := decoder{buf: b}
	m := &JoinRequest{}
	if err := decodeJoinRequestPrefix(&d, m); err != nil {
		return op.Op{}, err
	}
	var epoch uint64
	if d.remaining() >= 8 {
		var err error
		if epoch, err = d.u64(); err != nil {
			return op.Op{}, err
		}
	}
	if err := d.finish(); err != nil {
		return op.Op{}, err
	}
	o := op.Join(pathtree.PeerID(m.Peer), wireToPath(m.Path), m.Addr, 0)
	o.Epoch = epoch
	return o, nil
}

// DecodeBatchJoinOp decodes a MsgBatchJoinRequest (or its forwarded
// variant) payload into a KindBatchJoin op.
func DecodeBatchJoinOp(b []byte) (op.Op, error) {
	m, err := DecodeBatchJoinRequest(b)
	if err != nil {
		return op.Op{}, err
	}
	entries := make([]op.JoinEntry, len(m.Joins))
	for i := range m.Joins {
		j := &m.Joins[i]
		entries[i] = op.JoinEntry{
			Peer: pathtree.PeerID(j.Peer),
			Addr: j.Addr,
			Path: wireToPath(j.Path),
		}
	}
	return op.BatchJoin(entries, 0), nil
}

// DecodeLeaveOp decodes a MsgLeaveRequest payload into a KindLeave op.
func DecodeLeaveOp(b []byte) (op.Op, error) {
	m, err := DecodeLeaveRequest(b)
	if err != nil {
		return op.Op{}, err
	}
	return op.Leave(pathtree.PeerID(m.Peer)), nil
}

// DecodeRefreshOp decodes a MsgRefreshRequest payload into a KindRefresh
// op (unstamped, like DecodeJoinOp).
func DecodeRefreshOp(b []byte) (op.Op, error) {
	m, err := DecodeRefreshRequest(b)
	if err != nil {
		return op.Op{}, err
	}
	return op.Refresh(pathtree.PeerID(m.Peer), 0), nil
}

// wireToPath converts a wire router path to the topology form.
func wireToPath(path []int32) []topology.NodeID {
	out := make([]topology.NodeID, len(path))
	for i, r := range path {
		out[i] = topology.NodeID(r)
	}
	return out
}

// pathToWire converts a topology router path to the wire form.
func pathToWire(path []topology.NodeID) []int32 {
	out := make([]int32, len(path))
	for i, r := range path {
		out[i] = int32(r)
	}
	return out
}

// PathToWire converts a topology router path to its wire form. Front ends
// use it when re-encoding a decoded op for node-to-node forwarding.
func PathToWire(path []topology.NodeID) []int32 { return pathToWire(path) }
