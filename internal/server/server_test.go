package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"proxdisc/internal/pathtree"
	"proxdisc/internal/topology"
)

func newTestServer(t *testing.T, landmarks ...topology.NodeID) *Server {
	t.Helper()
	if len(landmarks) == 0 {
		landmarks = []topology.NodeID{0}
	}
	s, err := New(Config{Landmarks: landmarks})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("accepted zero landmarks")
	}
	if _, err := New(Config{Landmarks: []topology.NodeID{1, 1}}); err == nil {
		t.Fatal("accepted duplicate landmarks")
	}
	if _, err := New(Config{Landmarks: []topology.NodeID{1}, NeighborCount: -2}); err == nil {
		t.Fatal("accepted negative NeighborCount")
	}
}

func TestJoinReturnsNeighborsBeforeInsertion(t *testing.T) {
	s := newTestServer(t)
	got, err := s.Join(1, []topology.NodeID{10, 11, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("first joiner got neighbours %v", got)
	}
	got, err = s.Join(2, []topology.NodeID{12, 11, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Peer != 1 {
		t.Fatalf("second joiner got %v", got)
	}
	for _, c := range got {
		if c.Peer == 2 {
			t.Fatal("joiner in its own neighbour list")
		}
	}
	if s.NumPeers() != 2 {
		t.Fatalf("peers=%d", s.NumPeers())
	}
}

func TestJoinRejectsUnknownLandmark(t *testing.T) {
	s := newTestServer(t)
	if _, err := s.Join(1, []topology.NodeID{10, 99}); !errors.Is(err, ErrUnknownLandmark) {
		t.Fatalf("err=%v", err)
	}
	if _, err := s.Join(1, nil); err == nil {
		t.Fatal("accepted empty path")
	}
}

func TestJoinMultipleLandmarks(t *testing.T) {
	s := newTestServer(t, 0, 100)
	if _, err := s.Join(1, []topology.NodeID{10, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(2, []topology.NodeID{20, 100}); err != nil {
		t.Fatal(err)
	}
	// Peers under different landmarks do not see each other.
	got, err := s.Lookup(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("cross-landmark neighbours leaked: %v", got)
	}
	lms := s.Landmarks()
	if len(lms) != 2 || lms[0] != 0 || lms[1] != 100 {
		t.Fatalf("landmarks=%v", lms)
	}
}

func TestRejoinSwitchingLandmark(t *testing.T) {
	s := newTestServer(t, 0, 100)
	if _, err := s.Join(1, []topology.NodeID{10, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(1, []topology.NodeID{10, 100}); err != nil {
		t.Fatal(err)
	}
	if s.NumPeers() != 1 {
		t.Fatalf("peers=%d", s.NumPeers())
	}
	info, err := s.PeerInfo(1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Landmark != 100 {
		t.Fatalf("landmark=%d want 100", info.Landmark)
	}
	// Old tree must no longer hold the peer.
	st := s.Stats()
	if st.TreeStats[0].Peers != 0 || st.TreeStats[100].Peers != 1 {
		t.Fatalf("tree stats: %+v", st.TreeStats)
	}
}

func TestLookup(t *testing.T) {
	s := newTestServer(t)
	mustJoin(t, s, 1, 10, 11)
	mustJoin(t, s, 2, 12, 11)
	mustJoin(t, s, 3, 13)
	got, err := s.Lookup(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Peer != 2 {
		t.Fatalf("lookup=%v", got)
	}
	if _, err := s.Lookup(42); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err=%v", err)
	}
}

func TestNeighborCountHonored(t *testing.T) {
	s, err := New(Config{Landmarks: []topology.NodeID{0}, NeighborCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	for p := pathtree.PeerID(1); p <= 6; p++ {
		mustJoin(t, s, p, topology.NodeID(10+p))
	}
	got, _ := s.Lookup(1)
	if len(got) != 2 {
		t.Fatalf("got %d neighbours want 2", len(got))
	}
	if s.NeighborCount() != 2 {
		t.Fatalf("NeighborCount()=%d", s.NeighborCount())
	}
}

func TestLeave(t *testing.T) {
	s := newTestServer(t)
	mustJoin(t, s, 1, 10)
	mustJoin(t, s, 2, 11)
	if !s.Leave(1) {
		t.Fatal("leave failed")
	}
	if s.Leave(1) {
		t.Fatal("double leave succeeded")
	}
	got, _ := s.Lookup(2)
	if len(got) != 0 {
		t.Fatalf("departed peer still returned: %v", got)
	}
}

func TestExpire(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s, err := New(Config{Landmarks: []topology.NodeID{0}, PeerTTL: 30 * time.Second, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	mustJoin(t, s, 1, 10)
	now = now.Add(10 * time.Second)
	mustJoin(t, s, 2, 11)
	now = now.Add(25 * time.Second) // peer 1 is now 35s stale, peer 2 25s
	expired := s.Expire()
	if len(expired) != 1 || expired[0] != 1 {
		t.Fatalf("expired=%v", expired)
	}
	if s.NumPeers() != 1 {
		t.Fatalf("peers=%d", s.NumPeers())
	}
	// Refresh protects from expiry.
	if err := s.Refresh(2); err != nil {
		t.Fatal(err)
	}
	now = now.Add(25 * time.Second)
	if expired := s.Expire(); len(expired) != 0 {
		t.Fatalf("refreshed peer expired: %v", expired)
	}
	now = now.Add(31 * time.Second)
	if expired := s.Expire(); len(expired) != 1 {
		t.Fatalf("stale peer not expired: %v", expired)
	}
}

func TestExpireDisabledWithoutTTL(t *testing.T) {
	s := newTestServer(t)
	mustJoin(t, s, 1, 10)
	if got := s.Expire(); got != nil {
		t.Fatalf("expiry ran without TTL: %v", got)
	}
}

func TestRefreshUnknown(t *testing.T) {
	s := newTestServer(t)
	if err := s.Refresh(9); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err=%v", err)
	}
}

func TestSuperPeerDelegation(t *testing.T) {
	s := newTestServer(t)
	mustJoin(t, s, 1, 10, 11)
	mustJoin(t, s, 2, 12, 11)
	if err := s.SetSuperPeer(2, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup(1); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SuperPeerDelegations != 1 {
		t.Fatalf("delegations=%d want 1", st.SuperPeerDelegations)
	}
	if err := s.SetSuperPeer(77, true); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err=%v", err)
	}
}

func TestPeerInfoIsCopy(t *testing.T) {
	s := newTestServer(t)
	mustJoin(t, s, 1, 10, 11)
	info, err := s.PeerInfo(1)
	if err != nil {
		t.Fatal(err)
	}
	info.Path[0] = 999
	info2, _ := s.PeerInfo(1)
	if info2.Path[0] == 999 {
		t.Fatal("PeerInfo leaked internal slice")
	}
	if _, err := s.PeerInfo(5); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err=%v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	s := newTestServer(t)
	mustJoin(t, s, 1, 10)
	mustJoin(t, s, 2, 11)
	s.Lookup(1)
	s.Leave(2)
	st := s.Stats()
	if st.Joins != 2 || st.Leaves != 1 || st.Queries != 3 || st.Peers != 1 {
		t.Fatalf("stats=%+v", st)
	}
	if st.TreeStats[0].Peers != 1 {
		t.Fatalf("tree stats=%+v", st.TreeStats[0])
	}
}

func TestPeersSorted(t *testing.T) {
	s := newTestServer(t)
	mustJoin(t, s, 5, 10)
	mustJoin(t, s, 1, 11)
	mustJoin(t, s, 3, 12)
	got := s.Peers()
	want := []pathtree.PeerID{1, 3, 5}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("peers=%v", got)
	}
}

func TestConcurrentJoinsLeaves(t *testing.T) {
	s := newTestServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p := pathtree.PeerID(w*1000 + i)
				path := []topology.NodeID{topology.NodeID(1000 + int(p)), topology.NodeID(1 + i%20), 0}
				if _, err := s.Join(p, path); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					s.Leave(p)
				} else if i%3 == 1 {
					if _, err := s.Lookup(p); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := validateCounts(s); err != nil {
		t.Fatal(err)
	}
}

func validateCounts(s *Server) error {
	st := s.Stats()
	total := 0
	for _, ts := range st.TreeStats {
		total += ts.Peers
	}
	if total != st.Peers {
		return errors.New("tree peer totals disagree with registry")
	}
	return nil
}

// mustJoin joins peer p with a path through the listed routers ending at
// landmark 0.
func mustJoin(t *testing.T, s *Server, p pathtree.PeerID, routers ...topology.NodeID) {
	t.Helper()
	path := append(append([]topology.NodeID{}, routers...), 0)
	if _, err := s.Join(p, path); err != nil {
		t.Fatalf("Join(%d): %v", p, err)
	}
}

func TestJoinBatchMatchesSequentialJoins(t *testing.T) {
	batch := newTestServer(t, 0, 9)
	seq := newTestServer(t, 0, 9)
	items := []BatchJoin{
		{Peer: 1, Path: []topology.NodeID{5, 3, 0}},
		{Peer: 2, Path: []topology.NodeID{6, 3, 0}},
		{Peer: 3, Path: []topology.NodeID{7, 9}},
		{Peer: 4, Path: []topology.NodeID{5, 3, 0}},
	}
	res := batch.JoinBatch(items)
	if len(res) != len(items) {
		t.Fatalf("results=%d", len(res))
	}
	for i, it := range items {
		want, wantErr := seq.Join(it.Peer, it.Path)
		if (res[i].Err == nil) != (wantErr == nil) {
			t.Fatalf("entry %d: err=%v want %v", i, res[i].Err, wantErr)
		}
		if len(res[i].Neighbors) != len(want) {
			t.Fatalf("entry %d: %d neighbours want %d", i, len(res[i].Neighbors), len(want))
		}
		for k := range want {
			if res[i].Neighbors[k] != want[k] {
				t.Fatalf("entry %d neighbour %d: %+v want %+v", i, k, res[i].Neighbors[k], want[k])
			}
		}
	}
	if batch.NumPeers() != seq.NumPeers() {
		t.Fatalf("peers=%d want %d", batch.NumPeers(), seq.NumPeers())
	}
}

func TestJoinBatchPartialFailure(t *testing.T) {
	s := newTestServer(t)
	res := s.JoinBatch([]BatchJoin{
		{Peer: 1, Path: []topology.NodeID{4, 0}},
		{Peer: 2, Path: []topology.NodeID{4, 77}}, // unknown landmark
		{Peer: 3, Path: nil},                      // empty path
		{Peer: 4, Path: []topology.NodeID{5, 0}},
	})
	if res[0].Err != nil || res[3].Err != nil {
		t.Fatalf("good entries failed: %v %v", res[0].Err, res[3].Err)
	}
	if !errors.Is(res[1].Err, ErrUnknownLandmark) {
		t.Fatalf("entry 1 err=%v", res[1].Err)
	}
	if res[2].Err == nil {
		t.Fatal("empty path accepted")
	}
	if s.NumPeers() != 2 {
		t.Fatalf("peers=%d", s.NumPeers())
	}
	// The second good entry must see the first as a neighbour: entries are
	// applied in order within the single lock hold.
	if len(res[3].Neighbors) != 1 || res[3].Neighbors[0].Peer != 1 {
		t.Fatalf("entry 3 neighbours=%+v", res[3].Neighbors)
	}
}

func TestJoinBatchEmpty(t *testing.T) {
	s := newTestServer(t)
	if res := s.JoinBatch(nil); len(res) != 0 {
		t.Fatalf("res=%v", res)
	}
}
