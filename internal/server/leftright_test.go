package server

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"proxdisc/internal/pathtree"
	"proxdisc/internal/topology"
)

// TestMutateCoalescesPendingWriters pins the flat-combining contract
// deterministically: writers queued while a combiner holds the writer
// mutex are all run by the next combiner in ONE batch — every first-apply
// before any second-apply, one publication for the lot — and each
// mutation applies exactly once per state copy.
func TestMutateCoalescesPendingWriters(t *testing.T) {
	const writers = 10
	s, err := New(Config{Landmarks: []topology.NodeID{0}})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Occupies wmu: its first apply parks until the test releases it.
		s.mutate(func(st *state, first bool) {
			if first {
				close(entered)
				<-release
			}
		})
	}()
	<-entered

	// The blocker holds wmu, so these writers can only enqueue and wait.
	type event struct {
		writer int
		first  bool
	}
	var evMu sync.Mutex
	var events []event
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.mutate(func(st *state, first bool) {
				evMu.Lock()
				events = append(events, event{writer: i, first: first})
				evMu.Unlock()
			})
		}(i)
	}
	// Wait until every writer is in the combining queue, then let go.
	for {
		s.pendMu.Lock()
		n := len(s.pending)
		s.pendMu.Unlock()
		if n == writers {
			break
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if len(events) != 2*writers {
		t.Fatalf("recorded %d applies, want %d (each writer exactly once per copy)", len(events), 2*writers)
	}
	// One batch: all first-applies precede all second-applies, and the
	// second pass replays the identical writer order.
	var firsts, seconds []int
	for i, e := range events {
		if e.first {
			if len(seconds) > 0 {
				t.Fatalf("first-apply after a second-apply at event %d: writers were not combined into one batch: %v", i, events)
			}
			firsts = append(firsts, e.writer)
		} else {
			seconds = append(seconds, e.writer)
		}
	}
	if len(firsts) != writers || len(seconds) != writers {
		t.Fatalf("got %d first-applies and %d second-applies, want %d each", len(firsts), len(seconds), writers)
	}
	for i := range firsts {
		if firsts[i] != seconds[i] {
			t.Fatalf("second pass order %v != first pass order %v", seconds, firsts)
		}
	}
	seen := map[int]bool{}
	for _, w := range firsts {
		if seen[w] {
			t.Fatalf("writer %d applied twice on the same copy: %v", w, firsts)
		}
		seen[w] = true
	}
}

// churnPath builds a deterministic synthetic path for peer i ending at the
// landmark: a small fanout tree of routers so nearby IDs share prefixes.
func churnPath(landmark topology.NodeID, i int) []topology.NodeID {
	a := topology.NodeID(1000 + i%7)
	b := topology.NodeID(2000 + i%23)
	c := topology.NodeID(3000 + i)
	return []topology.NodeID{c, b, a, landmark}
}

// TestLeftRightChurn hammers the left-right read view: writer goroutines
// churn joins/leaves/refreshes while reader goroutines run lookups and
// info reads the whole time. Readers assert they never observe a torn
// view (an anchor peer that vanishes, a path that does not end at the
// landmark, an answer naming the queried peer itself); afterwards, at a
// quiescent point, the live answers must match a fresh server rebuilt
// from the snapshot — and must be identical before and after one more
// write swaps the two copies, proving both copies converged.
func TestLeftRightChurn(t *testing.T) {
	const landmark topology.NodeID = 9
	const anchors = 40
	s, err := New(Config{Landmarks: []topology.NodeID{landmark}, NeighborCount: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Anchor peers are inserted once and never removed: readers may query
	// them at any instant and must always get an answer.
	for i := 0; i < anchors; i++ {
		if _, err := s.Join(pathtree.PeerID(i+1), churnPath(landmark, i)); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	fail := func(format string, args ...any) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
		stop.Store(true)
	}

	// Writers: churn peers join, refresh, flip super-peer, and leave.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := 10_000 * (w + 1)
			for r := 0; !stop.Load(); r++ {
				p := pathtree.PeerID(base + r%500)
				if _, err := s.Join(p, churnPath(landmark, int(p))); err != nil {
					fail("churn join %d: %v", p, err)
					return
				}
				if r%3 == 0 {
					_ = s.Refresh(p)
				}
				if r%5 == 0 {
					_ = s.SetSuperPeer(p, true)
				}
				if r%2 == 0 {
					s.Leave(p)
				}
			}
		}(w)
	}
	// A batch writer exercises the amortized path under churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; !stop.Load(); r++ {
			items := make([]BatchJoin, 8)
			for i := range items {
				p := 50_000 + (r%200)*8 + i
				items[i] = BatchJoin{Peer: pathtree.PeerID(p), Path: churnPath(landmark, p)}
			}
			for _, res := range s.JoinBatch(items) {
				if res.Err != nil {
					fail("batch join: %v", res.Err)
					return
				}
			}
		}
	}()

	// Readers: lookups and info reads must always be internally consistent.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; !stop.Load(); r++ {
				p := pathtree.PeerID(r%anchors + 1)
				cands, err := s.Lookup(p)
				if err != nil {
					fail("lookup anchor %d: %v", p, err)
					return
				}
				for _, c := range cands {
					if c.Peer == p {
						fail("anchor %d returned in its own answer", p)
						return
					}
					if c.DTree < 0 {
						fail("anchor %d: negative dtree %d", p, c.DTree)
						return
					}
				}
				info, err := s.PeerInfo(p)
				if err != nil {
					fail("peerinfo anchor %d: %v", p, err)
					return
				}
				if got := info.Path[len(info.Path)-1]; got != landmark {
					fail("anchor %d path ends at %d, not landmark", p, got)
					return
				}
				if r%16 == 0 {
					if n := s.NumPeers(); n < anchors {
						fail("NumPeers %d below anchor floor %d", n, anchors)
						return
					}
				}
			}
		}(g)
	}

	// Let the churn run a fixed amount of writer work rather than wall
	// time, then stop everyone.
	for i := 0; i < 100; i++ {
		p := pathtree.PeerID(90_000 + i)
		if _, err := s.Join(p, churnPath(landmark, int(p))); err != nil {
			t.Fatalf("driver join: %v", err)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Quiescent point: live answers must match a server rebuilt from the
	// snapshot (same state, fresh trees).
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	ref, err := Restore(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.NumPeers(), ref.NumPeers(); got != want {
		t.Fatalf("NumPeers %d != rebuilt %d", got, want)
	}
	before := make(map[pathtree.PeerID][]pathtree.Candidate, anchors)
	for i := 0; i < anchors; i++ {
		p := pathtree.PeerID(i + 1)
		live, err := s.Lookup(p)
		if err != nil {
			t.Fatalf("quiescent lookup %d: %v", p, err)
		}
		fresh, err := ref.Lookup(p)
		if err != nil {
			t.Fatalf("rebuilt lookup %d: %v", p, err)
		}
		if len(live) != len(fresh) {
			t.Fatalf("anchor %d: live answer %v != rebuilt %v", p, live, fresh)
		}
		for j := range live {
			if live[j] != fresh[j] {
				t.Fatalf("anchor %d: live answer %v != rebuilt %v", p, live, fresh)
			}
		}
		before[p] = live
	}
	// One more write publishes the other copy; answers must not change —
	// the two left-right copies converged to the same state.
	if err := s.Refresh(1); err != nil {
		t.Fatal(err)
	}
	for p, want := range before {
		got, err := s.Lookup(p)
		if err != nil {
			t.Fatalf("post-swap lookup %d: %v", p, err)
		}
		if len(got) != len(want) {
			t.Fatalf("anchor %d: answer changed across copy swap: %v != %v", p, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("anchor %d: answer changed across copy swap: %v != %v", p, got, want)
			}
		}
	}
}
