package server

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
	"time"

	"proxdisc/internal/topology"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := newTestServer(t, 0, 100)
	mustJoin(t, s, 1, 10, 11)
	mustJoin(t, s, 2, 12, 11)
	if _, err := s.Join(3, []topology.NodeID{20, 100}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetSuperPeer(2, true); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumPeers() != 3 {
		t.Fatalf("restored peers=%d", restored.NumPeers())
	}
	// Landmarks and neighbour count carried over.
	lms := restored.Landmarks()
	if len(lms) != 2 || lms[0] != 0 || lms[1] != 100 {
		t.Fatalf("landmarks=%v", lms)
	}
	if restored.NeighborCount() != DefaultNeighborCount {
		t.Fatalf("neighbor count=%d", restored.NeighborCount())
	}
	// Queries behave identically post-restore.
	a, err := s.Lookup(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Lookup(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lookup diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lookup diverged: %v vs %v", a, b)
		}
	}
	// Super-peer flag preserved.
	info, err := restored.PeerInfo(2)
	if err != nil {
		t.Fatal(err)
	}
	if !info.SuperPeer {
		t.Fatal("super-peer flag lost")
	}
}

func TestSnapshotPreservesRefreshTimes(t *testing.T) {
	now := time.Unix(5000, 0)
	clock := func() time.Time { return now }
	s, err := New(Config{Landmarks: []topology.NodeID{0}, PeerTTL: 30 * time.Second, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	mustJoin(t, s, 1, 10)
	now = now.Add(20 * time.Second)
	mustJoin(t, s, 2, 11)

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf, Config{PeerTTL: 30 * time.Second, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	// 15 more seconds: peer 1 is 35s stale, peer 2 is 15s.
	now = now.Add(15 * time.Second)
	expired := restored.Expire()
	if len(expired) != 1 || expired[0] != 1 {
		t.Fatalf("expired=%v", expired)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(strings.NewReader("not a gob stream"), Config{}); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := Restore(bytes.NewReader(nil), Config{}); err == nil {
		t.Fatal("accepted empty stream")
	}
}

func TestSnapshotEmptyServer(t *testing.T) {
	s := newTestServer(t)
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumPeers() != 0 {
		t.Fatalf("peers=%d", restored.NumPeers())
	}
}

// TestResetFromSnapshot: the follower restore must REPLACE state (peers
// absent from the snapshot disappear), keep the configured landmarks, and
// reject garbage and future versions without touching existing state.
func TestResetFromSnapshot(t *testing.T) {
	src, err := New(Config{Landmarks: []topology.NodeID{0, 50}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Join(1, []topology.NodeID{10, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Join(2, []topology.NodeID{60, 50}); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := src.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	dst, err := New(Config{Landmarks: []topology.NodeID{0, 50}})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-existing state that the snapshot does NOT contain: it must be gone
	// after the reset (replace semantics, not Absorb's merge).
	if _, err := dst.Join(99, []topology.NodeID{11, 0}); err != nil {
		t.Fatal(err)
	}
	if err := dst.ResetFromSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.NumPeers() != 2 {
		t.Fatalf("reset left %d peers, want 2", dst.NumPeers())
	}
	if _, err := dst.Lookup(99); err == nil {
		t.Fatal("stale peer survived the reset")
	}
	var a, b bytes.Buffer
	if err := src.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := dst.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("reset copy is not byte-identical to the source")
	}

	// Garbage and future-version snapshots are rejected; the loaded state
	// survives untouched.
	if err := dst.ResetFromSnapshot(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	var future bytes.Buffer
	if err := gob.NewEncoder(&future).Encode(&snapshot{Version: 99}); err != nil {
		t.Fatal(err)
	}
	if err := dst.ResetFromSnapshot(bytes.NewReader(future.Bytes())); err == nil {
		t.Fatal("future snapshot version accepted")
	}
	if dst.NumPeers() != 2 {
		t.Fatalf("failed resets corrupted state: %d peers", dst.NumPeers())
	}
}
