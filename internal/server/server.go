// Package server implements the paper's management server: the component
// that stores every peer's router path to its landmark and answers a
// newcomer's closest-peers query (the "second round" of the protocol).
//
// The server maintains one path tree per landmark. A peer joins by reporting
// the router path from itself to its closest landmark (which the peer
// discovered in the "first round" with the traceroute-like tool); the server
// answers with the k peers whose paths indicate they are nearest, then
// inserts the newcomer so later arrivals can discover it.
//
// The server also implements the paper's future-work items: peer departure
// and expiry (faulty peers / handover), and super-peer delegation.
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"proxdisc/internal/pathtree"
	"proxdisc/internal/topology"
)

// DefaultNeighborCount is the size of the neighbour list returned to
// newcomers when Config.NeighborCount is zero.
const DefaultNeighborCount = 5

// ErrUnknownLandmark is returned when a reported path does not terminate at
// a registered landmark.
var ErrUnknownLandmark = errors.New("server: path does not end at a registered landmark")

// ErrUnknownPeer is returned by lookups for absent peers.
var ErrUnknownPeer = errors.New("server: unknown peer")

// Config parameterizes the management server.
type Config struct {
	// Landmarks lists the landmark routers. At least one is required.
	Landmarks []topology.NodeID
	// NeighborCount is the number of closest peers returned to a newcomer
	// (the paper's "short list"). Defaults to DefaultNeighborCount.
	NeighborCount int
	// PeerTTL, when positive, is the duration after which a peer that has
	// not refreshed is eligible for expiry sweeps (faulty-peer handling).
	PeerTTL time.Duration
	// Clock supplies the current time; defaults to time.Now. Simulations
	// inject a virtual clock here.
	Clock func() time.Time
	// TreeOptions tunes the underlying path trees.
	TreeOptions pathtree.Options
}

// PeerInfo is the server's record of one peer.
type PeerInfo struct {
	// ID is the peer's identifier.
	ID pathtree.PeerID
	// Landmark is the landmark whose tree holds the peer.
	Landmark topology.NodeID
	// Path is the reported router path, peer-side first.
	Path []topology.NodeID
	// SuperPeer marks peers that volunteered to answer locality queries
	// for their vicinity.
	SuperPeer bool
	// LastRefresh is the time of the last join/refresh.
	LastRefresh time.Time
}

// Stats counts server activity and state.
type Stats struct {
	// Peers is the current number of registered peers.
	Peers int
	// Joins, Leaves, Expiries, and Queries count operations since start.
	Joins, Leaves, Expiries, Queries int
	// SuperPeerDelegations counts queries answered by delegating to a
	// nearby super-peer rather than by a full tree walk.
	SuperPeerDelegations int
	// TreeStats maps each landmark to its path-tree statistics.
	TreeStats map[topology.NodeID]pathtree.Stats
}

// Server is the management server. It is safe for concurrent use.
type Server struct {
	cfg Config

	mu    sync.RWMutex
	trees map[topology.NodeID]*pathtree.Tree
	peers map[pathtree.PeerID]*PeerInfo

	joins, leaves, expiries, queries, delegations int
}

// New builds a server for the given landmark set.
func New(cfg Config) (*Server, error) {
	if len(cfg.Landmarks) == 0 {
		return nil, errors.New("server: at least one landmark required")
	}
	if cfg.NeighborCount == 0 {
		cfg.NeighborCount = DefaultNeighborCount
	}
	if cfg.NeighborCount < 0 {
		return nil, fmt.Errorf("server: negative NeighborCount %d", cfg.NeighborCount)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	s := &Server{
		cfg:   cfg,
		trees: make(map[topology.NodeID]*pathtree.Tree, len(cfg.Landmarks)),
		peers: make(map[pathtree.PeerID]*PeerInfo),
	}
	for _, lm := range cfg.Landmarks {
		if _, dup := s.trees[lm]; dup {
			return nil, fmt.Errorf("server: duplicate landmark %d", lm)
		}
		s.trees[lm] = pathtree.New(lm, cfg.TreeOptions)
	}
	return s, nil
}

// Landmarks returns the registered landmark routers in ascending order.
func (s *Server) Landmarks() []topology.NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.landmarksLocked()
}

// landmarksLocked is Landmarks for callers already holding s.mu: the tree
// set is mutable at runtime (Absorb, DropLandmark), so every read needs the
// lock.
func (s *Server) landmarksLocked() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(s.trees))
	for lm := range s.trees {
		out = append(out, lm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NeighborCount reports the configured answer size.
func (s *Server) NeighborCount() int { return s.cfg.NeighborCount }

// Join registers peer p with its reported path and returns its closest
// peers. The answer is computed before insertion, so a peer never appears in
// its own neighbour list. The path must terminate at a registered landmark.
func (s *Server) Join(p pathtree.PeerID, path []topology.NodeID) ([]pathtree.Candidate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.joinLocked(p, path)
}

// resolveJoinLocked validates a join's path, resolves its landmark tree,
// and retires the peer's old record when it re-joins under a different
// landmark. Shared by the answering and replica-apply registration paths
// so their semantics can never drift apart.
func (s *Server) resolveJoinLocked(p pathtree.PeerID, path []topology.NodeID) (*pathtree.Tree, topology.NodeID, error) {
	if len(path) == 0 {
		return nil, 0, errors.New("server: empty path")
	}
	lm := path[len(path)-1]
	tree, ok := s.trees[lm]
	if !ok {
		return nil, 0, fmt.Errorf("%w (router %d)", ErrUnknownLandmark, lm)
	}
	// If the peer re-joins under a different landmark, drop the old record.
	if old, exists := s.peers[p]; exists && old.Landmark != lm {
		s.trees[old.Landmark].Remove(p)
	}
	return tree, lm, nil
}

// insertJoinLocked performs the registration half of a join: the tree
// insert and the peer record. Counterpart of resolveJoinLocked.
func (s *Server) insertJoinLocked(tree *pathtree.Tree, lm topology.NodeID, p pathtree.PeerID, path []topology.NodeID) error {
	if err := tree.Insert(p, path); err != nil {
		return err
	}
	s.peers[p] = &PeerInfo{
		ID:          p,
		Landmark:    lm,
		Path:        append([]topology.NodeID(nil), path...),
		LastRefresh: s.cfg.Clock(),
	}
	s.joins++
	return nil
}

// joinLocked is the Join body for callers already holding s.mu.
func (s *Server) joinLocked(p pathtree.PeerID, path []topology.NodeID) ([]pathtree.Candidate, error) {
	tree, lm, err := s.resolveJoinLocked(p, path)
	if err != nil {
		return nil, err
	}
	cands, err := tree.ClosestToPath(path, s.cfg.NeighborCount, map[pathtree.PeerID]bool{p: true})
	if err != nil {
		return nil, err
	}
	if err := s.insertJoinLocked(tree, lm, p, path); err != nil {
		return nil, err
	}
	s.queries++
	return cands, nil
}

// ApplyJoin registers peer p without computing a closest-peers answer. It
// is the replica-apply path of a replicated cluster shard: the primary
// already answered the join, and the replicas only need to reach the same
// state, so the O(k·L) query walk is skipped. Exactly like Join, a re-join
// under a different landmark replaces the old record.
func (s *Server) ApplyJoin(p pathtree.PeerID, path []topology.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tree, lm, err := s.resolveJoinLocked(p, path)
	if err != nil {
		return err
	}
	return s.insertJoinLocked(tree, lm, p, path)
}

// BatchJoin is one entry of a batched join.
type BatchJoin struct {
	// Peer is the joining peer.
	Peer pathtree.PeerID
	// Path is its reported router path, peer-side first.
	Path []topology.NodeID
}

// BatchResult is the per-entry answer of JoinBatch: a neighbour list or an
// error, never both.
type BatchResult struct {
	Neighbors []pathtree.Candidate
	Err       error
}

// JoinBatch registers a batch of peers under a single lock acquisition —
// the flash-crowd fast path: one mutex round amortized over the whole
// batch instead of per join. Entries are applied in order
// (so a duplicate peer within the batch behaves exactly like sequential
// joins), and one entry's failure does not affect the others.
func (s *Server) JoinBatch(items []BatchJoin) []BatchResult {
	out := make([]BatchResult, len(items))
	if len(items) == 0 {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, it := range items {
		out[i].Neighbors, out[i].Err = s.joinLocked(it.Peer, it.Path)
	}
	return out
}

// Lookup re-answers the closest-peers query for an already registered peer.
// When a super-peer exists at dtree 0..2 from the peer, the server delegates
// (counts the delegation and still returns the list, modelling the
// super-peer answering from its local cache).
func (s *Server) Lookup(p pathtree.PeerID) ([]pathtree.Candidate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.peers[p]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownPeer, p)
	}
	tree := s.trees[info.Landmark]
	cands, err := tree.Closest(p, s.cfg.NeighborCount)
	if err != nil {
		return nil, err
	}
	s.queries++
	for _, c := range cands {
		if q := s.peers[c.Peer]; q != nil && q.SuperPeer && c.DTree <= 2 {
			s.delegations++
			break
		}
	}
	return cands, nil
}

// Refresh updates a peer's liveness timestamp (heartbeat).
func (s *Server) Refresh(p pathtree.PeerID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.peers[p]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, p)
	}
	info.LastRefresh = s.cfg.Clock()
	return nil
}

// Leave removes peer p; it reports whether the peer was registered.
func (s *Server) Leave(p pathtree.PeerID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.peers[p]
	if !ok {
		return false
	}
	s.trees[info.Landmark].Remove(p)
	delete(s.peers, p)
	s.leaves++
	return true
}

// Expire sweeps out peers whose last refresh is older than the configured
// PeerTTL, returning the expired IDs. A zero PeerTTL disables expiry.
func (s *Server) Expire() []pathtree.PeerID {
	if s.cfg.PeerTTL <= 0 {
		return nil
	}
	cutoff := s.cfg.Clock().Add(-s.cfg.PeerTTL)
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []pathtree.PeerID
	for p, info := range s.peers {
		if info.LastRefresh.Before(cutoff) {
			s.trees[info.Landmark].Remove(p)
			delete(s.peers, p)
			out = append(out, p)
		}
	}
	s.expiries += len(out)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetSuperPeer marks or unmarks peer p as a super-peer.
func (s *Server) SetSuperPeer(p pathtree.PeerID, super bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.peers[p]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, p)
	}
	info.SuperPeer = super
	return nil
}

// PeerInfo returns a copy of the record for peer p.
func (s *Server) PeerInfo(p pathtree.PeerID) (PeerInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	info, ok := s.peers[p]
	if !ok {
		return PeerInfo{}, fmt.Errorf("%w: %d", ErrUnknownPeer, p)
	}
	cp := *info
	cp.Path = append([]topology.NodeID(nil), info.Path...)
	return cp, nil
}

// NumPeers reports the number of registered peers.
func (s *Server) NumPeers() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.peers)
}

// Peers returns all registered peer IDs in ascending order.
func (s *Server) Peers() []pathtree.PeerID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]pathtree.PeerID, 0, len(s.peers))
	for p := range s.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// QueryCounters reports the served-query and super-peer-delegation counts
// without walking any tree — the cheap accessor replica-set aggregation
// uses where full Stats would pay an O(nodes) traversal per landmark.
func (s *Server) QueryCounters() (queries, delegations int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.queries, s.delegations
}

// Stats snapshots server counters and tree shapes.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Peers:                len(s.peers),
		Joins:                s.joins,
		Leaves:               s.leaves,
		Expiries:             s.expiries,
		Queries:              s.queries,
		SuperPeerDelegations: s.delegations,
		TreeStats:            make(map[topology.NodeID]pathtree.Stats, len(s.trees)),
	}
	for lm, tree := range s.trees {
		st.TreeStats[lm] = tree.Stats()
	}
	return st
}
