// Package server implements the paper's management server: the component
// that stores every peer's router path to its landmark and answers a
// newcomer's closest-peers query (the "second round" of the protocol).
//
// The server maintains one path tree per landmark. A peer joins by reporting
// the router path from itself to its closest landmark (which the peer
// discovered in the "first round" with the traceroute-like tool); the server
// answers with the k peers whose paths indicate they are nearest, then
// inserts the newcomer so later arrivals can discover it.
//
// The server also implements the paper's future-work items: peer departure
// and expiry (faulty peers / handover), and super-peer delegation.
//
// # Concurrency: left-right read views
//
// The server keeps two complete copies of its state (trees, peer records,
// epochs). Readers load the currently published copy through an atomic
// pointer and read it under that copy's RLock; writers serialize on a
// writer mutex, mutate the unpublished copy, atomically publish it, and
// then replay the same mutation on the retired copy. The per-copy RWMutex
// is a grace-period fence, not a contention point: a writer's Lock only
// waits for stale readers that loaded the copy before it was retired —
// steady-state readers always hold the published copy and never wait on a
// writer, and a whole Apply batch costs readers at most one pointer load.
// Contending writers flat-combine: mutations queue, and the writer that
// wins the mutex runs the whole queue under a single publication, so k
// concurrent writers pay one grace-period wait instead of k (see mutate).
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"proxdisc/internal/op"
	"proxdisc/internal/pathtree"
	"proxdisc/internal/topology"
)

// DefaultNeighborCount is the size of the neighbour list returned to
// newcomers when Config.NeighborCount is zero.
const DefaultNeighborCount = 5

// ErrUnknownLandmark is returned when a reported path does not terminate at
// a registered landmark.
var ErrUnknownLandmark = errors.New("server: path does not end at a registered landmark")

// ErrUnknownPeer is returned by lookups for absent peers.
var ErrUnknownPeer = errors.New("server: unknown peer")

// ErrStaleEpoch rejects a write fenced at an out-of-date landmark epoch:
// the landmark moved between shards after the writer resolved its owner,
// and the deposed owner must not silently accept mutations for a tree it
// no longer serves. Writers recover by re-resolving the owner and
// retrying at the current epoch.
var ErrStaleEpoch = errors.New("server: stale landmark epoch")

// Config parameterizes the management server.
type Config struct {
	// Landmarks lists the landmark routers. At least one is required.
	Landmarks []topology.NodeID
	// NeighborCount is the number of closest peers returned to a newcomer
	// (the paper's "short list"). Defaults to DefaultNeighborCount.
	NeighborCount int
	// PeerTTL, when positive, is the duration after which a peer that has
	// not refreshed is eligible for expiry sweeps (faulty-peer handling).
	PeerTTL time.Duration
	// Clock supplies the current time; defaults to time.Now. Simulations
	// inject a virtual clock here.
	Clock func() time.Time
	// TreeOptions tunes the underlying path trees.
	TreeOptions pathtree.Options
}

// PeerInfo is the server's record of one peer.
type PeerInfo struct {
	// ID is the peer's identifier.
	ID pathtree.PeerID
	// Landmark is the landmark whose tree holds the peer.
	Landmark topology.NodeID
	// Path is the reported router path, peer-side first.
	Path []topology.NodeID
	// Addr is the peer's advertised overlay address, when the join came in
	// over the wire ("" for in-process joins). It is durable state: it
	// rides in join ops, snapshots, and the WAL, so a restarted node's
	// answers carry dialable endpoints.
	Addr string
	// SuperPeer marks peers that volunteered to answer locality queries
	// for their vicinity.
	SuperPeer bool
	// LastRefresh is the time of the last join/refresh.
	LastRefresh time.Time
}

// Stats counts server activity and state.
type Stats struct {
	// Peers is the current number of registered peers.
	Peers int
	// Joins, Leaves, Expiries, and Queries count operations since start.
	Joins, Leaves, Expiries, Queries int
	// SuperPeerDelegations counts queries answered by delegating to a
	// nearby super-peer rather than by a full tree walk.
	SuperPeerDelegations int
	// TreeStats maps each landmark to its path-tree statistics.
	TreeStats map[topology.NodeID]pathtree.Stats
}

// state is one complete copy of the server's mutable state. The server
// keeps two (left-right): the published copy serves readers, the other
// absorbs writes, and they trade places on every write batch. Path slices
// inside PeerInfo are never shared between copies' records being mutated —
// each copy owns its PeerInfo structs outright.
type state struct {
	trees map[topology.NodeID]*pathtree.Tree
	peers map[pathtree.PeerID]*PeerInfo
	// epochs holds each landmark's fencing epoch. Only landmarks that have
	// moved at least once have an entry; absence means epoch zero. The
	// epoch is durable state: it rides in snapshots (version 3) and in
	// KindMoveLandmark ops, so every copy agrees on who owns a landmark.
	epochs map[topology.NodeID]uint64
}

// side pairs one state copy with its grace-period fence.
type side struct {
	mu sync.RWMutex
	st state
}

// counters is the activity attributable to one applied op; the Server
// folds it into its atomic totals exactly once per op (on the first of
// the two state applications).
type counters struct {
	joins, leaves, expiries int
}

// writeReq is one queued mutation awaiting a combiner. done is buffered:
// a token arriving means a combiner holding wmu already ran (and
// published) this request on the caller's behalf.
type writeReq struct {
	apply func(st *state, first bool)
	done  chan struct{}
}

var writeReqPool = sync.Pool{
	New: func() any { return &writeReq{done: make(chan struct{}, 1)} },
}

// Server is the management server. It is safe for concurrent use.
type Server struct {
	cfg Config

	// wmu serializes writers and guards write; read always points at the
	// published side. See the package comment for the left-right protocol.
	wmu   sync.Mutex
	write *side
	read  atomic.Pointer[side]

	// pendMu guards the flat-combining queue: mutators enqueue here, and
	// whichever of them wins wmu drains the queue and runs the whole batch
	// under a single publication. pendSpare is the drained slice, recycled
	// by the combiner (which owns it, under wmu) to keep enqueueing
	// allocation-free.
	pendMu    sync.Mutex
	pending   []*writeReq
	pendSpare []*writeReq

	joins, leaves, expiries, queries, delegations atomic.Int64
}

// New builds a server for the given landmark set.
func New(cfg Config) (*Server, error) {
	if len(cfg.Landmarks) == 0 {
		return nil, errors.New("server: at least one landmark required")
	}
	return newServer(cfg)
}

// NewEmpty builds a server with no landmark trees: the seed state of a
// freshly added cluster shard, which acquires landmarks through handoff
// (Absorb + KindMoveLandmark) rather than configuration.
func NewEmpty(cfg Config) (*Server, error) {
	cfg.Landmarks = nil
	return newServer(cfg)
}

func newState(cfg *Config) (state, error) {
	st := state{
		trees:  make(map[topology.NodeID]*pathtree.Tree, len(cfg.Landmarks)),
		peers:  make(map[pathtree.PeerID]*PeerInfo),
		epochs: make(map[topology.NodeID]uint64),
	}
	for _, lm := range cfg.Landmarks {
		if _, dup := st.trees[lm]; dup {
			return state{}, fmt.Errorf("server: duplicate landmark %d", lm)
		}
		st.trees[lm] = pathtree.New(lm, cfg.TreeOptions)
	}
	return st, nil
}

func newServer(cfg Config) (*Server, error) {
	if cfg.NeighborCount == 0 {
		cfg.NeighborCount = DefaultNeighborCount
	}
	if cfg.NeighborCount < 0 {
		return nil, fmt.Errorf("server: negative NeighborCount %d", cfg.NeighborCount)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	s := &Server{cfg: cfg}
	a, err := newState(&s.cfg)
	if err != nil {
		return nil, err
	}
	b, _ := newState(&s.cfg)
	s.write = &side{st: a}
	s.read.Store(&side{st: b})
	return s, nil
}

// mutate runs apply against both state copies under the left-right
// protocol. apply is invoked exactly twice: first on the unpublished
// write copy with first=true (answers are computed there), then — after
// that copy has been atomically published to readers — on the retired
// copy with first=false to bring it up to date. apply must effect the
// identical state change on both copies; outside mutate the two copies
// are always equal.
//
// Writers flat-combine: each mutation enqueues, and whichever writer wins
// wmu drains the queue and runs every queued mutation — in enqueue order —
// under ONE publication and ONE pair of grace-period fences. Under
// multi-core contention this turns k writers queued on the old per-write
// protocol (k publications, each waiting out a reader grace period) into
// one combined batch, while an uncontended write costs only an extra
// queue push. Mutations still execute strictly serialized, so apply
// closures need no locking of their own.
func (s *Server) mutate(apply func(st *state, first bool)) {
	req := writeReqPool.Get().(*writeReq)
	req.apply = apply
	s.pendMu.Lock()
	s.pending = append(s.pending, req)
	s.pendMu.Unlock()

	s.wmu.Lock()
	select {
	case <-req.done:
		// A combiner that held wmu before us already ran and published
		// this request; the token receive orders its writes (including
		// our answer closure's results) before our return.
		s.wmu.Unlock()
		req.apply = nil
		writeReqPool.Put(req)
		return
	default:
	}
	// We are the combiner. Drain the queue — it contains our own request
	// and any others that enqueued before we won wmu.
	s.pendMu.Lock()
	batch := s.pending
	s.pending = s.pendSpare[:0]
	s.pendMu.Unlock()

	w := s.write
	// The fence: stale readers that loaded this copy before it was
	// retired (at least one whole batch ago) may still hold RLocks; wait
	// them out and hold the write lock across the mutation so late
	// stragglers block rather than observe a half-applied batch.
	w.mu.Lock()
	for _, r := range batch {
		r.apply(&w.st, true)
	}
	w.mu.Unlock()
	old := s.read.Swap(w)
	s.write = old
	old.mu.Lock()
	for _, r := range batch {
		r.apply(&old.st, false)
	}
	old.mu.Unlock()
	// Hand tokens to the coalesced waiters BEFORE releasing wmu: the next
	// wmu holder must observe its token, or it would combine a batch its
	// own request is no longer part of and return with apply never run.
	for i, r := range batch {
		if r != req {
			r.done <- struct{}{}
		}
		batch[i] = nil
	}
	s.pendSpare = batch[:0]
	s.wmu.Unlock()
	req.apply = nil
	writeReqPool.Put(req)
}

// acquireRead returns the published side with its fence read-held.
// Callers must rs.mu.RUnlock() when done with rs.st.
func (s *Server) acquireRead() *side {
	rs := s.read.Load()
	rs.mu.RLock()
	return rs
}

// addCounters folds one op's activity into the atomic totals.
func (s *Server) addCounters(c counters) {
	if c.joins != 0 {
		s.joins.Add(int64(c.joins))
	}
	if c.leaves != 0 {
		s.leaves.Add(int64(c.leaves))
	}
	if c.expiries != 0 {
		s.expiries.Add(int64(c.expiries))
	}
}

// Landmarks returns the registered landmark routers in ascending order.
func (s *Server) Landmarks() []topology.NodeID {
	rs := s.acquireRead()
	defer rs.mu.RUnlock()
	return rs.st.landmarks()
}

// landmarks lists the tree set in ascending order; it is mutable at
// runtime (Absorb, DropLandmark), so every read needs the side held.
func (st *state) landmarks() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(st.trees))
	for lm := range st.trees {
		out = append(out, lm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NeighborCount reports the configured answer size.
func (s *Server) NeighborCount() int { return s.cfg.NeighborCount }

// stamp fills a zero op timestamp from the server clock, so every copy
// that later applies or replays the op sees the same instant.
func (s *Server) stamp(o op.Op) op.Op {
	if o.Time == 0 {
		o.Time = s.cfg.Clock().UnixNano()
	}
	return o
}

// Apply is the server's single mutation entry point: it applies one typed
// operation without computing any answer. Every path that moves writes
// around — replica propagation, promotion tail-replay, rebuild catch-up,
// WAL recovery — calls Apply, so a replayed stream reaches exactly the
// state the original stream built. The answering front doors (Join,
// JoinOp, JoinBatch, Lookup-free writes) are thin wrappers over the same
// core. A zero o.Time is stamped from the server clock; stamped ops apply
// at their recorded instant regardless of the local clock.
func (s *Server) Apply(o op.Op) error {
	o = s.stamp(o)
	var err error
	s.mutate(func(st *state, first bool) {
		c, e := st.apply(o, &s.cfg)
		if first {
			err = e
			s.addCounters(c)
		}
	})
	return err
}

// apply dispatches one op against a state copy. It must be deterministic:
// the same op against equal copies effects the equal change (mutate runs
// it on both).
func (st *state) apply(o op.Op, cfg *Config) (counters, error) {
	var c counters
	switch o.Kind {
	case op.KindJoin:
		tree, lm, err := st.resolveJoin(o.Join.Peer, o.Join.Path)
		if err != nil {
			return c, err
		}
		if err := st.insertJoin(tree, lm, &o.Join, o.Time); err != nil {
			return c, err
		}
		c.joins++
		return c, nil
	case op.KindBatchJoin:
		// Batch entries that fail individually are skipped, matching the
		// answering path's per-entry isolation: recorded batch ops carry
		// only entries the primary accepted, so on replay none should
		// fail — but a tolerant replay never aborts a whole batch.
		for i := range o.Batch {
			e := &o.Batch[i]
			tree, lm, err := st.resolveJoin(e.Peer, e.Path)
			if err != nil {
				continue
			}
			if st.insertJoin(tree, lm, e, o.Time) == nil {
				c.joins++
			}
		}
		return c, nil
	case op.KindLeave:
		if err := st.leave(o.Peer); err != nil {
			return c, err
		}
		c.leaves++
		return c, nil
	case op.KindRefresh:
		info, ok := st.peers[o.Peer]
		if !ok {
			return c, fmt.Errorf("%w: %d", ErrUnknownPeer, o.Peer)
		}
		info.LastRefresh = time.Unix(0, o.Time)
		return c, nil
	case op.KindSetSuperPeer:
		info, ok := st.peers[o.Peer]
		if !ok {
			return c, fmt.Errorf("%w: %d", ErrUnknownPeer, o.Peer)
		}
		info.SuperPeer = o.Super
		return c, nil
	case op.KindExpire:
		c.expiries = len(st.expireBefore(time.Unix(0, o.Time)))
		return c, nil
	case op.KindMoveLandmark:
		// A server applies the epoch half of a handoff: the peer transfer
		// itself travels as a snapshot (Absorb on the destination,
		// DropLandmark on the source). A follower's flat copy holds every
		// landmark, so for it the move IS just the epoch bump; a shard
		// replica sees the op after absorbing the tree. The tree is created
		// if absent so a replica that never held the landmark still records
		// its fence.
		lm := o.Move.Landmark
		if _, ok := st.trees[lm]; !ok {
			st.trees[lm] = pathtree.New(lm, cfg.TreeOptions)
		}
		if o.Move.Epoch > st.epochs[lm] {
			st.epochs[lm] = o.Move.Epoch
		}
		return c, nil
	default:
		return c, fmt.Errorf("server: cannot apply op kind %d", o.Kind)
	}
}

// Join registers peer p with its reported path and returns its closest
// peers. The answer is computed before insertion, so a peer never appears in
// its own neighbour list. The path must terminate at a registered landmark.
func (s *Server) Join(p pathtree.PeerID, path []topology.NodeID) ([]pathtree.Candidate, error) {
	return s.JoinOp(op.Join(p, path, "", 0))
}

// JoinOp answers and applies a KindJoin op: the op-native form of Join,
// used by front ends that carry overlay addresses and by the cluster's
// primary apply path.
func (s *Server) JoinOp(o op.Op) ([]pathtree.Candidate, error) {
	o = s.stamp(o)
	var cands []pathtree.Candidate
	var err error
	s.mutate(func(st *state, first bool) {
		if first {
			cands, err = st.joinOp(o, s.cfg.NeighborCount)
			if err == nil {
				s.joins.Add(1)
				s.queries.Add(1)
			}
			return
		}
		if err == nil {
			// Replay the registration silently on the retired copy; the
			// answer was already computed on the published one.
			_, _ = st.apply(o, &s.cfg)
		}
	})
	return cands, err
}

// resolveJoin validates a join's path, resolves its landmark tree, and
// retires the peer's old record when it re-joins under a different
// landmark. Shared by the answering and replica-apply registration paths
// so their semantics can never drift apart.
func (st *state) resolveJoin(p pathtree.PeerID, path []topology.NodeID) (*pathtree.Tree, topology.NodeID, error) {
	if len(path) == 0 {
		return nil, 0, errors.New("server: empty path")
	}
	lm := path[len(path)-1]
	tree, ok := st.trees[lm]
	if !ok {
		return nil, 0, fmt.Errorf("%w (router %d)", ErrUnknownLandmark, lm)
	}
	// If the peer re-joins under a different landmark, drop the old record.
	if old, exists := st.peers[p]; exists && old.Landmark != lm {
		st.trees[old.Landmark].Remove(p)
	}
	return tree, lm, nil
}

// insertJoin performs the registration half of a join: the tree insert
// and the peer record, stamped at the op's time. Counterpart of
// resolveJoin.
func (st *state) insertJoin(tree *pathtree.Tree, lm topology.NodeID, e *op.JoinEntry, timeNanos int64) error {
	if err := tree.Insert(e.Peer, e.Path); err != nil {
		return err
	}
	st.peers[e.Peer] = &PeerInfo{
		ID:          e.Peer,
		Landmark:    lm,
		Path:        append([]topology.NodeID(nil), e.Path...),
		Addr:        e.Addr,
		LastRefresh: time.Unix(0, timeNanos),
	}
	return nil
}

// joinOp is the answering join body: the closest-peers query followed by
// the same registration apply performs. It runs on the write copy only.
func (st *state) joinOp(o op.Op, neighborCount int) ([]pathtree.Candidate, error) {
	tree, lm, err := st.resolveJoin(o.Join.Peer, o.Join.Path)
	if err != nil {
		return nil, err
	}
	cands, err := tree.ClosestToPathExcluding(o.Join.Path, neighborCount, o.Join.Peer)
	if err != nil {
		return nil, err
	}
	if err := st.insertJoin(tree, lm, &o.Join, o.Time); err != nil {
		return nil, err
	}
	return cands, nil
}

// BatchJoin is one entry of a batched join.
type BatchJoin struct {
	// Peer is the joining peer.
	Peer pathtree.PeerID
	// Addr is the peer's advertised overlay address ("" for in-process
	// callers).
	Addr string
	// Path is its reported router path, peer-side first.
	Path []topology.NodeID
}

// BatchResult is the per-entry answer of JoinBatch: a neighbour list or an
// error, never both.
type BatchResult struct {
	Neighbors []pathtree.Candidate
	Err       error
}

// JoinBatch registers a batch of peers under a single writer round —
// the flash-crowd fast path: one left-right publication amortized over
// the whole batch instead of per join. Entries are applied in order
// (so a duplicate peer within the batch behaves exactly like sequential
// joins), and one entry's failure does not affect the others.
func (s *Server) JoinBatch(items []BatchJoin) []BatchResult {
	entries := make([]op.JoinEntry, len(items))
	for i, it := range items {
		entries[i] = op.JoinEntry{Peer: it.Peer, Addr: it.Addr, Path: it.Path}
	}
	return s.JoinBatchOp(op.BatchJoin(entries, 0))
}

// JoinBatchOp answers and applies a KindBatchJoin op, entry by entry in
// order under one writer round. Callers that record or propagate the op
// must first trim it to the entries that succeeded, so replicas and logs
// never see a rejected entry.
func (s *Server) JoinBatchOp(o op.Op) []BatchResult {
	o = s.stamp(o)
	out := make([]BatchResult, len(o.Batch))
	if len(o.Batch) == 0 {
		return out
	}
	s.mutate(func(st *state, first bool) {
		single := op.Op{Kind: op.KindJoin, Time: o.Time}
		if first {
			n := 0
			for i := range o.Batch {
				single.Join = o.Batch[i]
				out[i].Neighbors, out[i].Err = st.joinOp(single, s.cfg.NeighborCount)
				if out[i].Err == nil {
					n++
				}
			}
			s.joins.Add(int64(n))
			s.queries.Add(int64(n))
			return
		}
		for i := range o.Batch {
			if out[i].Err != nil {
				continue
			}
			single.Join = o.Batch[i]
			_, _ = st.apply(single, &s.cfg)
		}
	})
	return out
}

// Lookup re-answers the closest-peers query for an already registered peer.
// When a super-peer exists at dtree 0..2 from the peer, the server delegates
// (counts the delegation and still returns the list, modelling the
// super-peer answering from its local cache). Lookup runs entirely on the
// published read copy: it never waits on writers.
func (s *Server) Lookup(p pathtree.PeerID) ([]pathtree.Candidate, error) {
	rs := s.acquireRead()
	defer rs.mu.RUnlock()
	st := &rs.st
	info, ok := st.peers[p]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownPeer, p)
	}
	tree := st.trees[info.Landmark]
	cands, err := tree.Closest(p, s.cfg.NeighborCount)
	if err != nil {
		return nil, err
	}
	s.queries.Add(1)
	for _, c := range cands {
		if q := st.peers[c.Peer]; q != nil && q.SuperPeer && c.DTree <= 2 {
			s.delegations.Add(1)
			break
		}
	}
	return cands, nil
}

// Refresh updates a peer's liveness timestamp (heartbeat).
func (s *Server) Refresh(p pathtree.PeerID) error {
	return s.Apply(op.Refresh(p, 0))
}

// leave removes a registered peer from one state copy.
func (st *state) leave(p pathtree.PeerID) error {
	info, ok := st.peers[p]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, p)
	}
	st.trees[info.Landmark].Remove(p)
	delete(st.peers, p)
	return nil
}

// Leave removes peer p; it reports whether the peer was registered.
func (s *Server) Leave(p pathtree.PeerID) bool {
	return s.Apply(op.Leave(p)) == nil
}

// expireBefore sweeps out peers whose last refresh is strictly before the
// cutoff, returning the expired IDs in ascending order.
func (st *state) expireBefore(cutoff time.Time) []pathtree.PeerID {
	var out []pathtree.PeerID
	for p, info := range st.peers {
		if info.LastRefresh.Before(cutoff) {
			st.trees[info.Landmark].Remove(p)
			delete(st.peers, p)
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Expire sweeps out peers whose last refresh is older than the configured
// PeerTTL, returning the expired IDs. A zero PeerTTL disables expiry.
func (s *Server) Expire() []pathtree.PeerID {
	if s.cfg.PeerTTL <= 0 {
		return nil
	}
	return s.ExpireOp(op.Expire(s.cfg.Clock().Add(-s.cfg.PeerTTL).UnixNano()))
}

// ExpireOp applies a KindExpire op and returns the expired IDs — the
// answering form of the sweep; Apply runs the identical sweep silently.
// Because the op carries its deadline and every peer's LastRefresh comes
// from op timestamps, every copy that applies the same ExpireOp expires
// exactly the same peers.
func (s *Server) ExpireOp(o op.Op) []pathtree.PeerID {
	var out []pathtree.PeerID
	s.mutate(func(st *state, first bool) {
		expired := st.expireBefore(time.Unix(0, o.Time))
		if first {
			out = expired
			s.expiries.Add(int64(len(expired)))
		}
	})
	return out
}

// SetSuperPeer marks or unmarks peer p as a super-peer.
func (s *Server) SetSuperPeer(p pathtree.PeerID, super bool) error {
	return s.Apply(op.SetSuperPeer(p, super))
}

// PeerInfo returns a copy of the record for peer p.
func (s *Server) PeerInfo(p pathtree.PeerID) (PeerInfo, error) {
	rs := s.acquireRead()
	defer rs.mu.RUnlock()
	info, ok := rs.st.peers[p]
	if !ok {
		return PeerInfo{}, fmt.Errorf("%w: %d", ErrUnknownPeer, p)
	}
	cp := *info
	cp.Path = append([]topology.NodeID(nil), info.Path...)
	return cp, nil
}

// NumPeers reports the number of registered peers.
func (s *Server) NumPeers() int {
	rs := s.acquireRead()
	defer rs.mu.RUnlock()
	return len(rs.st.peers)
}

// Peers returns all registered peer IDs in ascending order.
func (s *Server) Peers() []pathtree.PeerID {
	rs := s.acquireRead()
	defer rs.mu.RUnlock()
	out := make([]pathtree.PeerID, 0, len(rs.st.peers))
	for p := range rs.st.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Epoch reports a landmark's current fencing epoch (zero for a landmark
// that never moved or is not held here).
func (s *Server) Epoch(lm topology.NodeID) uint64 {
	rs := s.acquireRead()
	defer rs.mu.RUnlock()
	return rs.st.epochs[lm]
}

// Epochs returns a copy of every non-zero landmark fencing epoch.
func (s *Server) Epochs() map[topology.NodeID]uint64 {
	rs := s.acquireRead()
	defer rs.mu.RUnlock()
	out := make(map[topology.NodeID]uint64, len(rs.st.epochs))
	for lm, e := range rs.st.epochs {
		out[lm] = e
	}
	return out
}

// QueryCounters reports the served-query and super-peer-delegation counts
// without walking any tree — the cheap accessor replica-set aggregation
// uses where full Stats would pay an O(nodes) traversal per landmark.
func (s *Server) QueryCounters() (queries, delegations int) {
	return int(s.queries.Load()), int(s.delegations.Load())
}

// Stats snapshots server counters and tree shapes.
func (s *Server) Stats() Stats {
	rs := s.acquireRead()
	defer rs.mu.RUnlock()
	st := Stats{
		Peers:                len(rs.st.peers),
		Joins:                int(s.joins.Load()),
		Leaves:               int(s.leaves.Load()),
		Expiries:             int(s.expiries.Load()),
		Queries:              int(s.queries.Load()),
		SuperPeerDelegations: int(s.delegations.Load()),
		TreeStats:            make(map[topology.NodeID]pathtree.Stats, len(rs.st.trees)),
	}
	for lm, tree := range rs.st.trees {
		st.TreeStats[lm] = tree.Stats()
	}
	return st
}
