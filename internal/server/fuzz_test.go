package server

import (
	"bytes"
	"reflect"
	"testing"

	"proxdisc/internal/op"
	"proxdisc/internal/pathtree"
	"proxdisc/internal/topology"
)

// fuzzSeedSnapshot serializes a small populated server for the fuzz corpus.
func fuzzSeedSnapshot(tb testing.TB) []byte {
	tb.Helper()
	s, err := New(Config{Landmarks: []topology.NodeID{0, 50}})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := s.Join(1, []topology.NodeID{10, 11, 0}); err != nil {
		tb.Fatal(err)
	}
	if _, err := s.Join(2, []topology.NodeID{12, 11, 0}); err != nil {
		tb.Fatal(err)
	}
	if _, err := s.Join(3, []topology.NodeID{20, 50}); err != nil {
		tb.Fatal(err)
	}
	if err := s.SetSuperPeer(2, true); err != nil {
		tb.Fatal(err)
	}
	// A moved landmark gives the seed a non-zero fencing epoch, so the
	// corpus exercises the v3 snapshot layout.
	if err := s.Apply(op.MoveLandmark(0, 0, 1, 3)); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzAbsorb feeds arbitrary bytes to the snapshot decoder behind Absorb —
// the surface a replica rebuild and a shard handoff trust — and, whenever
// the input decodes as a valid snapshot, checks the absorb/re-snapshot
// round trip: absorbing the server's own snapshot into a fresh server must
// reproduce the identical peer set, paths included, and absorbing it twice
// must change nothing (idempotence under the live-record-wins rule).
func FuzzAbsorb(f *testing.F) {
	f.Add(fuzzSeedSnapshot(f))
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dst, err := New(Config{Landmarks: []topology.NodeID{9999}})
		if err != nil {
			t.Fatal(err)
		}
		absorbed, err := dst.Absorb(bytes.NewReader(data))
		if err != nil {
			return // rejected input: must only never panic or corrupt
		}
		if len(absorbed) > dst.NumPeers() {
			t.Fatalf("absorbed %d peers but server holds %d", len(absorbed), dst.NumPeers())
		}
		// Round trip: a re-snapshot of the merged server must absorb into a
		// fresh server and reproduce the same records.
		var buf bytes.Buffer
		if err := dst.Snapshot(&buf); err != nil {
			t.Fatalf("re-snapshot of absorbed state: %v", err)
		}
		clone, err := New(Config{Landmarks: []topology.NodeID{9999}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := clone.Absorb(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("round-trip absorb: %v", err)
		}
		if !reflect.DeepEqual(peersWithPaths(t, dst), peersWithPaths(t, clone)) {
			t.Fatal("round-trip changed the peer records")
		}
		if !reflect.DeepEqual(dst.Epochs(), clone.Epochs()) {
			t.Fatalf("round-trip changed the landmark epochs: %v vs %v", dst.Epochs(), clone.Epochs())
		}
		// Idempotence: absorbing the same snapshot again is a no-op.
		again, err := dst.Absorb(bytes.NewReader(data))
		if err == nil && len(again) != 0 {
			t.Fatalf("re-absorb inserted %d duplicate peers", len(again))
		}
	})
}

// peersWithPaths keys every registered peer to its stored record shape.
func peersWithPaths(t *testing.T, s *Server) map[pathtree.PeerID]PeerInfo {
	t.Helper()
	out := make(map[pathtree.PeerID]PeerInfo, s.NumPeers())
	for _, p := range s.Peers() {
		info, err := s.PeerInfo(p)
		if err != nil {
			t.Fatalf("peer %d vanished: %v", p, err)
		}
		out[p] = info
	}
	return out
}
