package server

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"

	"proxdisc/internal/pathtree"
	"proxdisc/internal/topology"
)

// snapshot is the gob-serialized server state. Trees are not serialized:
// they are rebuilt from the stored paths on restore, which keeps the format
// independent of the tree's in-memory layout.
type snapshot struct {
	Version       int
	Landmarks     []topology.NodeID
	NeighborCount int
	Peers         []snapshotPeer
	// Epochs lists the non-zero landmark fencing epochs, ascending by
	// landmark (version 3). A sorted slice rather than a map: gob map
	// iteration order would break the byte-identity contract between a
	// primary's snapshot and a converged follower's.
	Epochs []snapshotEpoch
}

type snapshotEpoch struct {
	Landmark topology.NodeID
	Epoch    uint64
}

type snapshotPeer struct {
	ID          pathtree.PeerID
	Landmark    topology.NodeID
	Path        []topology.NodeID
	Addr        string
	SuperPeer   bool
	LastRefresh time.Time
}

// snapshotVersion is the current format: version 2 added the peer overlay
// address, version 3 the landmark fencing epochs. Older snapshots decode
// fine (gob leaves absent fields zero — an address-less peer, an
// all-epoch-zero landmark set), so decoders accept all three.
const snapshotVersion = 3

// checkSnapshotVersion rejects snapshots from the future.
func checkSnapshotVersion(v int) error {
	if v < 1 || v > snapshotVersion {
		return fmt.Errorf("server: unsupported snapshot version %d", v)
	}
	return nil
}

// epochsSnap collects the non-zero fencing epochs of the landmarks in
// want (every held landmark when want is nil), sorted ascending.
func (st *state) epochsSnap(want map[topology.NodeID]bool) []snapshotEpoch {
	var out []snapshotEpoch
	for lm, e := range st.epochs {
		if e == 0 || (want != nil && !want[lm]) {
			continue
		}
		if _, held := st.trees[lm]; !held {
			continue
		}
		out = append(out, snapshotEpoch{Landmark: lm, Epoch: e})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Landmark < out[j].Landmark })
	return out
}

// adoptEpochs raises the local fencing epochs to a snapshot's (an epoch
// never goes backwards, whatever order snapshot parts arrive in).
func (st *state) adoptEpochs(es []snapshotEpoch) {
	for _, e := range es {
		if e.Epoch > st.epochs[e.Landmark] {
			st.epochs[e.Landmark] = e.Epoch
		}
	}
}

// Snapshot serializes the server's durable state (landmarks, configuration,
// and every peer's path) so a restarted management server can resume
// serving without waiting for the whole population to rejoin — the
// management server is a single point of failure in the paper's
// architecture, and this is the standard mitigation. It reads the
// published copy, so a snapshot never blocks writers longer than one
// left-right fence.
func (s *Server) Snapshot(w io.Writer) error {
	rs := s.acquireRead()
	st := &rs.st
	snap := snapshot{
		Version:       snapshotVersion,
		Landmarks:     st.landmarks(),
		NeighborCount: s.cfg.NeighborCount,
		Peers:         make([]snapshotPeer, 0, len(st.peers)),
	}
	for _, info := range st.peers {
		snap.Peers = append(snap.Peers, snapshotPeer{
			ID:          info.ID,
			Landmark:    info.Landmark,
			Path:        append([]topology.NodeID(nil), info.Path...),
			Addr:        info.Addr,
			SuperPeer:   info.SuperPeer,
			LastRefresh: info.LastRefresh,
		})
	}
	snap.Epochs = st.epochsSnap(nil)
	rs.mu.RUnlock()
	sort.Slice(snap.Peers, func(i, j int) bool { return snap.Peers[i].ID < snap.Peers[j].ID })
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("server: snapshot encode: %w", err)
	}
	return nil
}

// SnapshotLandmarks serializes the state of a subset of the server's
// landmarks: the named landmark trees and every peer registered under them,
// in the same format as Snapshot. The cluster layer uses it to hand a
// landmark's tree from one shard to another.
func (s *Server) SnapshotLandmarks(w io.Writer, lms ...topology.NodeID) error {
	want := make(map[topology.NodeID]bool, len(lms))
	rs := s.acquireRead()
	st := &rs.st
	for _, lm := range lms {
		if _, ok := st.trees[lm]; !ok {
			rs.mu.RUnlock()
			return fmt.Errorf("server: snapshot of unknown landmark %d", lm)
		}
		want[lm] = true
	}
	snap := snapshot{
		Version:       snapshotVersion,
		Landmarks:     append([]topology.NodeID(nil), lms...),
		NeighborCount: s.cfg.NeighborCount,
	}
	for _, info := range st.peers {
		if !want[info.Landmark] {
			continue
		}
		snap.Peers = append(snap.Peers, snapshotPeer{
			ID:          info.ID,
			Landmark:    info.Landmark,
			Path:        append([]topology.NodeID(nil), info.Path...),
			Addr:        info.Addr,
			SuperPeer:   info.SuperPeer,
			LastRefresh: info.LastRefresh,
		})
	}
	snap.Epochs = st.epochsSnap(want)
	rs.mu.RUnlock()
	sort.Slice(snap.Landmarks, func(i, j int) bool { return snap.Landmarks[i] < snap.Landmarks[j] })
	sort.Slice(snap.Peers, func(i, j int) bool { return snap.Peers[i].ID < snap.Peers[j].ID })
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("server: snapshot encode: %w", err)
	}
	return nil
}

// absorb merges a decoded snapshot into one state copy; it must be
// deterministic across copies (it iterates the snapshot's slices, never a
// map). Returns the IDs of the peers actually inserted, unsorted.
func (st *state) absorb(snap *snapshot, cfg *Config) ([]pathtree.PeerID, error) {
	for _, lm := range snap.Landmarks {
		if _, ok := st.trees[lm]; !ok {
			st.trees[lm] = pathtree.New(lm, cfg.TreeOptions)
		}
	}
	st.adoptEpochs(snap.Epochs)
	var absorbed []pathtree.PeerID
	for _, p := range snap.Peers {
		if _, exists := st.peers[p.ID]; exists {
			continue
		}
		tree, ok := st.trees[p.Landmark]
		if !ok {
			return absorbed, fmt.Errorf("server: snapshot peer %d references unknown landmark %d", p.ID, p.Landmark)
		}
		if err := tree.Insert(p.ID, p.Path); err != nil {
			return absorbed, fmt.Errorf("server: snapshot peer %d: %w", p.ID, err)
		}
		st.peers[p.ID] = &PeerInfo{
			ID:          p.ID,
			Landmark:    p.Landmark,
			Path:        append([]topology.NodeID(nil), p.Path...),
			Addr:        p.Addr,
			SuperPeer:   p.SuperPeer,
			LastRefresh: p.LastRefresh,
		}
		absorbed = append(absorbed, p.ID)
	}
	return absorbed, nil
}

// Absorb merges a snapshot into a live server: the snapshot's landmark
// trees are created if absent and its peers inserted. A peer already
// registered here is skipped — the live record is newer than the snapshot.
// Absorb returns the IDs of the peers actually inserted, in ascending order.
func (s *Server) Absorb(r io.Reader) ([]pathtree.PeerID, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("server: snapshot decode: %w", err)
	}
	if err := checkSnapshotVersion(snap.Version); err != nil {
		return nil, err
	}
	var absorbed []pathtree.PeerID
	var err error
	s.mutate(func(st *state, first bool) {
		a, e := st.absorb(&snap, &s.cfg)
		if first {
			absorbed, err = a, e
		}
	})
	sort.Slice(absorbed, func(i, j int) bool { return absorbed[i] < absorbed[j] })
	return absorbed, err
}

// rebuild constructs a fresh state from a snapshot (the follower's
// catch-up restore form): configured landmarks union the snapshot's,
// every peer from the snapshot alone.
func rebuild(snap *snapshot, cfg *Config) (state, error) {
	st := state{
		trees:  make(map[topology.NodeID]*pathtree.Tree, len(cfg.Landmarks)),
		peers:  make(map[pathtree.PeerID]*PeerInfo, len(snap.Peers)),
		epochs: make(map[topology.NodeID]uint64, len(snap.Epochs)),
	}
	for _, lm := range cfg.Landmarks {
		st.trees[lm] = pathtree.New(lm, cfg.TreeOptions)
	}
	for _, lm := range snap.Landmarks {
		if _, ok := st.trees[lm]; !ok {
			st.trees[lm] = pathtree.New(lm, cfg.TreeOptions)
		}
	}
	for _, p := range snap.Peers {
		tree, ok := st.trees[p.Landmark]
		if !ok {
			return state{}, fmt.Errorf("server: snapshot peer %d references unknown landmark %d", p.ID, p.Landmark)
		}
		if err := tree.Insert(p.ID, p.Path); err != nil {
			return state{}, fmt.Errorf("server: snapshot peer %d: %w", p.ID, err)
		}
		st.peers[p.ID] = &PeerInfo{
			ID:          p.ID,
			Landmark:    p.Landmark,
			Path:        append([]topology.NodeID(nil), p.Path...),
			Addr:        p.Addr,
			SuperPeer:   p.SuperPeer,
			LastRefresh: p.LastRefresh,
		}
	}
	st.adoptEpochs(snap.Epochs)
	return st, nil
}

// ResetFromSnapshot replaces the server's entire peer state with the
// snapshot's: every tree is rebuilt from scratch and every pre-existing
// peer record dropped, keeping only the configured landmark set (union
// the snapshot's). It is the follower's catch-up restore — a follower far
// behind its primary receives a whole-state snapshot, and merging it in
// (Absorb) would resurrect peers the primary has since removed.
func (s *Server) ResetFromSnapshot(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("server: snapshot decode: %w", err)
	}
	if err := checkSnapshotVersion(snap.Version); err != nil {
		return err
	}
	var err error
	s.mutate(func(st *state, first bool) {
		fresh, e := rebuild(&snap, &s.cfg)
		if first {
			err = e
		}
		if e == nil {
			*st = fresh
		}
	})
	return err
}

// DropLandmark removes a landmark's tree and deregisters every peer under
// it, returning the removed peer IDs in ascending order. It is the source
// side of a shard handoff; unlike Leave it does not count departures.
func (s *Server) DropLandmark(lm topology.NodeID) []pathtree.PeerID {
	var out []pathtree.PeerID
	s.mutate(func(st *state, first bool) {
		if _, ok := st.trees[lm]; !ok {
			return
		}
		var removed []pathtree.PeerID
		for p, info := range st.peers {
			if info.Landmark == lm {
				delete(st.peers, p)
				removed = append(removed, p)
			}
		}
		delete(st.trees, lm)
		delete(st.epochs, lm)
		if first {
			out = removed
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MergeSnapshots combines several snapshot streams with disjoint landmark
// sets into one snapshot, without rebuilding any path trees — the cluster
// uses it to emit a whole-cluster snapshot from per-shard ones. All parts
// must agree on the neighbour count.
func MergeSnapshots(w io.Writer, parts ...io.Reader) error {
	if len(parts) == 0 {
		return fmt.Errorf("server: merge of zero snapshots")
	}
	out := snapshot{Version: snapshotVersion}
	seen := make(map[topology.NodeID]bool)
	for i, r := range parts {
		var snap snapshot
		if err := gob.NewDecoder(r).Decode(&snap); err != nil {
			return fmt.Errorf("server: merge part %d decode: %w", i, err)
		}
		if err := checkSnapshotVersion(snap.Version); err != nil {
			return fmt.Errorf("server: merge part %d: %w", i, err)
		}
		if i == 0 {
			out.NeighborCount = snap.NeighborCount
		} else if snap.NeighborCount != out.NeighborCount {
			return fmt.Errorf("server: merge part %d: neighbour count %d != %d",
				i, snap.NeighborCount, out.NeighborCount)
		}
		for _, lm := range snap.Landmarks {
			if seen[lm] {
				return fmt.Errorf("server: merge part %d: duplicate landmark %d", i, lm)
			}
			seen[lm] = true
			out.Landmarks = append(out.Landmarks, lm)
		}
		out.Peers = append(out.Peers, snap.Peers...)
		out.Epochs = append(out.Epochs, snap.Epochs...)
	}
	sort.Slice(out.Landmarks, func(i, j int) bool { return out.Landmarks[i] < out.Landmarks[j] })
	sort.Slice(out.Peers, func(i, j int) bool { return out.Peers[i].ID < out.Peers[j].ID })
	sort.Slice(out.Epochs, func(i, j int) bool { return out.Epochs[i].Landmark < out.Epochs[j].Landmark })
	if err := gob.NewEncoder(w).Encode(&out); err != nil {
		return fmt.Errorf("server: merge encode: %w", err)
	}
	return nil
}

// Restore builds a server from a snapshot. The snapshot's landmarks and
// neighbour count are used; cfg supplies the runtime-only settings (TTL,
// clock, tree options).
func Restore(r io.Reader, cfg Config) (*Server, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("server: snapshot decode: %w", err)
	}
	if err := checkSnapshotVersion(snap.Version); err != nil {
		return nil, err
	}
	cfg.Landmarks = snap.Landmarks
	cfg.NeighborCount = snap.NeighborCount
	// newServer rather than New: a freshly added elastic shard legitimately
	// snapshots (and so restores) with zero landmarks.
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	var rerr error
	s.mutate(func(st *state, first bool) {
		fresh, e := rebuild(&snap, &s.cfg)
		if first {
			rerr = e
		}
		if e == nil {
			*st = fresh
		}
	})
	if rerr != nil {
		return nil, rerr
	}
	return s, nil
}
