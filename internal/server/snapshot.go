package server

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"

	"proxdisc/internal/pathtree"
	"proxdisc/internal/topology"
)

// snapshot is the gob-serialized server state. Trees are not serialized:
// they are rebuilt from the stored paths on restore, which keeps the format
// independent of the tree's in-memory layout.
type snapshot struct {
	Version       int
	Landmarks     []topology.NodeID
	NeighborCount int
	Peers         []snapshotPeer
}

type snapshotPeer struct {
	ID          pathtree.PeerID
	Landmark    topology.NodeID
	Path        []topology.NodeID
	SuperPeer   bool
	LastRefresh time.Time
}

const snapshotVersion = 1

// Snapshot serializes the server's durable state (landmarks, configuration,
// and every peer's path) so a restarted management server can resume
// serving without waiting for the whole population to rejoin — the
// management server is a single point of failure in the paper's
// architecture, and this is the standard mitigation.
func (s *Server) Snapshot(w io.Writer) error {
	s.mu.RLock()
	snap := snapshot{
		Version:       snapshotVersion,
		Landmarks:     s.Landmarks(),
		NeighborCount: s.cfg.NeighborCount,
		Peers:         make([]snapshotPeer, 0, len(s.peers)),
	}
	for _, info := range s.peers {
		snap.Peers = append(snap.Peers, snapshotPeer{
			ID:          info.ID,
			Landmark:    info.Landmark,
			Path:        append([]topology.NodeID(nil), info.Path...),
			SuperPeer:   info.SuperPeer,
			LastRefresh: info.LastRefresh,
		})
	}
	s.mu.RUnlock()
	sort.Slice(snap.Peers, func(i, j int) bool { return snap.Peers[i].ID < snap.Peers[j].ID })
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("server: snapshot encode: %w", err)
	}
	return nil
}

// Restore builds a server from a snapshot. The snapshot's landmarks and
// neighbour count are used; cfg supplies the runtime-only settings (TTL,
// clock, tree options).
func Restore(r io.Reader, cfg Config) (*Server, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("server: snapshot decode: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("server: unsupported snapshot version %d", snap.Version)
	}
	cfg.Landmarks = snap.Landmarks
	cfg.NeighborCount = snap.NeighborCount
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range snap.Peers {
		tree, ok := s.trees[p.Landmark]
		if !ok {
			return nil, fmt.Errorf("server: snapshot peer %d references unknown landmark %d", p.ID, p.Landmark)
		}
		if err := tree.Insert(p.ID, p.Path); err != nil {
			return nil, fmt.Errorf("server: snapshot peer %d: %w", p.ID, err)
		}
		s.peers[p.ID] = &PeerInfo{
			ID:          p.ID,
			Landmark:    p.Landmark,
			Path:        append([]topology.NodeID(nil), p.Path...),
			SuperPeer:   p.SuperPeer,
			LastRefresh: p.LastRefresh,
		}
	}
	return s, nil
}
