// Subscribe: cache-backed k-closest tracking over the push read plane.
//
// The livestream example rebuilds each peer's neighbour set by calling
// Lookup — the pull road. A peer that wants to *keep* its neighbour set
// fresh would have to poll that road on a timer, paying a full answer per
// tick whether or not anything changed. This example replaces the polling
// loop with one live subscription: the server pushes a delta only when a
// committed op actually changes the answer, and CachedLookup serves reads
// from the subscription's local cache without touching the wire.
//
//	go run ./examples/subscribe
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"proxdisc"
)

func main() {
	// Subscriptions are fed from the committed op stream, so the node
	// must be durable (a WAL is what gives the stream its sequence).
	dir, err := os.MkdirTemp("", "proxdisc-subscribe-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	clu, err := proxdisc.NewCluster(proxdisc.ClusterConfig{
		Landmarks: []proxdisc.RouterID{0, 100},
		Shards:    1,
		DataDir:   dir,
		NoSync:    true, // demo node; durability is not the point here
	})
	if err != nil {
		log.Fatal(err)
	}
	defer clu.Close()

	ns, err := proxdisc.ListenAndServe(proxdisc.NetServerConfig{
		Addr:   "127.0.0.1:0",
		Server: clu,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ns.Close()
	fmt.Printf("management server at %s\n\n", ns.Addr())

	c, err := proxdisc.Dial(ns.Addr(), 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// A small population under the landmark-0 tree. Peer 1 is the
	// subject whose neighbourhood we track.
	path := func(leaf, agg int32) []int32 { return []int32{leaf, agg, 0} }
	const subject = int64(1)
	if _, err := c.Join(subject, "peer-1:7000", path(1000, 10)); err != nil {
		log.Fatal(err)
	}
	for i := int64(2); i <= 6; i++ {
		if _, err := c.Join(i, fmt.Sprintf("peer-%d:7000", i), path(1000+int32(i), 10+int32(i)%2)); err != nil {
			log.Fatal(err)
		}
	}

	// One subscription replaces the polling loop. The ack carries the
	// full current answer, so the cache is useful immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sub, err := proxdisc.Subscribe(ctx, c, proxdisc.KClosestQuery(proxdisc.PeerID(subject)))
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()

	kind := map[uint8]string{
		proxdisc.EventEnter:  "enter",
		proxdisc.EventLeave:  "leave",
		proxdisc.EventUpdate: "update",
		proxdisc.EventResync: "resync",
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range sub.Events() {
			if ev.Kind == proxdisc.EventResync {
				fmt.Printf("  event seq=%-3d resync (%d neighbours)\n", ev.Seq, len(ev.Neighbors))
				continue
			}
			fmt.Printf("  event seq=%-3d %-6s peer=%d dtree=%d\n", ev.Seq, kind[ev.Kind], ev.Cand.Peer, ev.Cand.DTree)
		}
	}()

	show := func(when string) {
		// CachedLookup answers from the live cache: no request frame,
		// no response frame, no server work.
		answer, err := c.CachedLookup(ctx, subject)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — k-closest of peer %d (served from cache):\n", when, subject)
		for _, cand := range answer {
			fmt.Printf("  peer %-3d dtree=%d addr=%s\n", cand.Peer, cand.DTree, cand.Addr)
		}
		fmt.Println()
	}

	settle := func() { time.Sleep(100 * time.Millisecond) } // demo pacing; deltas are pushed, not polled
	settle()
	show("after join")

	// Churn: a closer peer arrives, an existing neighbour departs. Each
	// committed op that changes the answer arrives as one pushed delta —
	// a poller would have paid two full lookups per peer per tick to
	// notice the same two changes.
	fmt.Println("peer 7 joins on the subject's own leaf router (closer than everyone):")
	if _, err := c.Join(7, "peer-7:7000", path(1000, 10)); err != nil {
		log.Fatal(err)
	}
	settle()
	show("after enter")

	fmt.Println("peer 2 leaves:")
	if err := c.Leave(2); err != nil {
		log.Fatal(err)
	}
	settle()
	show("after leave")

	sub.Close()
	<-done
	fmt.Println("the pull road still works — Lookup answers the same bytes the")
	fmt.Println("cache held, because both roads resolve through the same server path.")
}
