// Livestream: the paper's motivating workload. Bootstrap a mesh-based live
// streaming swarm twice — once with neighbours from the proxdisc management
// server, once with random neighbours — and compare network cost and
// delivery latency.
//
//	go run ./examples/livestream
package main

import (
	"fmt"
	"log"
	"math/rand"

	"proxdisc"
)

const (
	peers     = 400
	neighbors = 5
)

func main() {
	sim, err := proxdisc.NewSimulation(proxdisc.SimulationConfig{
		Topology: proxdisc.TopologyConfig{
			CoreRouters:  1500,
			LeafRouters:  1500,
			EdgesPerNode: 2,
			Seed:         11,
		},
		NumLandmarks:  8,
		NeighborCount: neighbors,
		Seed:          11,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.JoinN(peers); err != nil {
		log.Fatal(err)
	}
	ids := sim.Server.Peers()

	// Ground-truth hop distances between every pair of peers.
	hopRows := make(map[proxdisc.PeerID][]int32, len(ids))
	for _, p := range ids {
		row, err := proxdisc.HopDistances(sim, sim.Attachments[p])
		if err != nil {
			log.Fatal(err)
		}
		hopRows[p] = row
	}
	hops := func(a, b proxdisc.PeerID) (int, error) {
		return int(hopRows[a][sim.Attachments[b]]), nil
	}

	for _, variant := range []string{"proximity (proxdisc)", "random"} {
		mesh := proxdisc.NewOverlay()
		for _, p := range ids {
			if err := mesh.AddPeer(proxdisc.OverlayPeer{ID: p, Attachment: sim.Attachments[p]}); err != nil {
				log.Fatal(err)
			}
		}
		switch variant {
		case "proximity (proxdisc)":
			for _, p := range ids {
				answer, err := sim.Server.Lookup(p)
				if err != nil {
					log.Fatal(err)
				}
				for _, c := range answer {
					if err := mesh.Connect(p, c.Peer); err != nil {
						log.Fatal(err)
					}
				}
			}
		case "random":
			rng := rand.New(rand.NewSource(99))
			for _, p := range ids {
				for mesh.Degree(p) < neighbors {
					q := ids[rng.Intn(len(ids))]
					if q == p {
						continue
					}
					if err := mesh.Connect(p, q); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
		// Bridge disconnected islands to the source so the broadcast
		// reaches everyone (the tracker fallback real systems use).
		source := ids[0]
		inMain := map[proxdisc.PeerID]bool{}
		for _, p := range mesh.ConnectedComponentOf(source) {
			inMain[p] = true
		}
		for _, p := range ids {
			if !inMain[p] {
				for _, q := range mesh.ConnectedComponentOf(p) {
					inMain[q] = true
				}
				if err := mesh.Connect(source, p); err != nil {
					log.Fatal(err)
				}
			}
		}

		// Mean hop distance per overlay link: the traffic-locality win.
		totalHops, links := 0, 0
		for _, p := range mesh.Peers() {
			for _, q := range mesh.Neighbors(p) {
				if q > p {
					h, _ := hops(p, q)
					totalHops += h
					links++
				}
			}
		}

		sess, err := proxdisc.NewStreamSession(mesh, source, hops, proxdisc.StreamConfig{
			Chunks: 30,
			Seed:   3,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s links=%-5d mean-link-hops=%.2f  delivery mean=%.1fms p95=%.1fms  setup p95=%.0fms\n",
			variant, links, float64(totalHops)/float64(links),
			res.MeanDeliveryMS, res.P95DeliveryMS, res.P95SetupMS)
	}
	fmt.Println("\nproximity neighbours keep chunk exchanges local (fewer underlay hops")
	fmt.Println("per transfer), which is what makes quick closest-peer discovery matter")
	fmt.Println("for a newcomer's setup delay in live streaming.")
}
