// Realnet: run the deployable system end to end on loopback — a TCP
// management server, UDP landmark probe responders, and peer agents that
// probe landmarks, "traceroute" (via a simulated provider), and join.
//
//	go run ./examples/realnet
package main

import (
	"fmt"
	"log"
	"time"

	"proxdisc"
)

func main() {
	// The router paths come from a simulated topology: in a production
	// deployment the PathProvider would invoke the system traceroute tool
	// instead. Everything else below is the real networked stack.
	sim, err := proxdisc.NewSimulation(proxdisc.SimulationConfig{
		Topology: proxdisc.TopologyConfig{
			CoreRouters:  600,
			LeafRouters:  600,
			EdgesPerNode: 2,
			Seed:         21,
		},
		NumLandmarks: 4,
		Seed:         21,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Management-server logic with the simulation's landmark routers.
	logic, err := proxdisc.NewServer(proxdisc.ServerConfig{
		Landmarks:     sim.Landmarks,
		NeighborCount: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One UDP probe responder per landmark.
	lmAddrs := make(map[proxdisc.RouterID]string, len(sim.Landmarks))
	for _, lm := range sim.Landmarks {
		resp, err := proxdisc.ListenLandmark("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Close()
		lmAddrs[lm] = resp.Addr()
		fmt.Printf("landmark %-5d probe responder at %s\n", lm, resp.Addr())
	}

	// TCP front end.
	ns, err := proxdisc.ListenAndServe(proxdisc.NetServerConfig{
		Addr:          "127.0.0.1:0",
		Server:        logic,
		LandmarkAddrs: lmAddrs,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ns.Close()
	fmt.Printf("management server at %s\n\n", ns.Addr())

	// Twenty peers join over real TCP/UDP, each with its own connection
	// and a path provider backed by the simulated traceroute tool.
	for i := 0; i < 20; i++ {
		peerID := int64(i + 1)
		att := sim.LeafPool[i]
		c, err := proxdisc.Dial(ns.Addr(), 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		agent := &proxdisc.Agent{
			Client: c,
			Provider: proxdisc.PathProviderFunc(func(landmark int32) ([]int32, error) {
				res, err := sim.Tracer.Trace(att, proxdisc.RouterID(landmark), proxdisc.TraceConfig{}, nil)
				if err != nil {
					return nil, err
				}
				known := res.KnownRouterPath()
				out := make([]int32, len(known))
				for j, r := range known {
					out[j] = int32(r)
				}
				return out, nil
			}),
			OverlayAddr:  fmt.Sprintf("127.0.0.1:%d", 9000+i),
			ProbeTries:   2,
			ProbeTimeout: time.Second,
		}
		answer, err := agent.Join(peerID)
		if err != nil {
			log.Fatal(err)
		}
		if len(answer) > 0 {
			fmt.Printf("peer %-3d joined from router %-5d → closest: ", peerID, att)
			for _, cand := range answer {
				fmt.Printf("%d(dtree=%d, %s) ", cand.Peer, cand.DTree, cand.Addr)
			}
			fmt.Println()
		} else {
			fmt.Printf("peer %-3d joined from router %-5d → first in its vicinity\n", peerID, att)
		}
		c.Close()
	}

	st := logic.Stats()
	fmt.Printf("\nserver stats: peers=%d joins=%d queries=%d\n", st.Peers, st.Joins, st.Queries)
}
