// Churn: demonstrate the faulty-peer handling the paper lists as future
// work. Peers join, half of them vanish silently (no Leave), and the
// management server's TTL-based expiry sweep cleans the stale state so
// newcomers stop being pointed at ghosts.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"time"

	"proxdisc"
)

func main() {
	// A virtual clock the example advances by hand, injected into the
	// server so expiry is deterministic.
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { return now }

	sim, err := proxdisc.NewSimulation(proxdisc.SimulationConfig{
		Topology: proxdisc.TopologyConfig{
			CoreRouters:  500,
			LeafRouters:  500,
			EdgesPerNode: 2,
			Seed:         31,
		},
		NumLandmarks: 4,
		Seed:         31,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Replace the simulation's server with one that has a 30 s TTL and the
	// virtual clock.
	srv, err := proxdisc.NewServer(proxdisc.ServerConfig{
		Landmarks:     sim.Landmarks,
		NeighborCount: 5,
		PeerTTL:       30 * time.Second,
		Clock:         clock,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim.Server = srv

	if err := sim.JoinN(200); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joined %d peers\n", srv.NumPeers())

	// Half the population dies silently; the rest keeps heartbeating.
	ids := srv.Peers()
	dead := map[proxdisc.PeerID]bool{}
	for i, p := range ids {
		if i%2 == 0 {
			dead[p] = true // vanished: no Leave, no Refresh
		}
	}
	// 20 virtual seconds pass; survivors refresh.
	now = now.Add(20 * time.Second)
	for _, p := range ids {
		if !dead[p] {
			if err := srv.Refresh(p); err != nil {
				log.Fatal(err)
			}
		}
	}

	staleCount := func() int {
		stale := 0
		for _, p := range ids {
			if dead[p] {
				continue
			}
			answer, err := srv.Lookup(p)
			if err != nil {
				log.Fatal(err)
			}
			for _, c := range answer {
				if dead[c.Peer] {
					stale++
				}
			}
		}
		return stale
	}

	fmt.Printf("before expiry: server believes %d peers are alive; stale answers=%d\n",
		srv.NumPeers(), staleCount())

	// Another 15 virtual seconds: the dead peers are now 35 s silent,
	// beyond the 30 s TTL. Run the sweep.
	now = now.Add(15 * time.Second)
	expired := srv.Expire()
	fmt.Printf("expiry sweep removed %d silent peers\n", len(expired))
	fmt.Printf("after expiry: server tracks %d peers; stale answers=%d\n",
		srv.NumPeers(), staleCount())

	st := srv.Stats()
	fmt.Printf("\nserver counters: joins=%d expiries=%d queries=%d\n",
		st.Joins, st.Expiries, st.Queries)
}
