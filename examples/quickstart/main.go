// Quickstart: build a simulated 1000-peer proxdisc deployment, join a
// newcomer, and inspect the closest peers it is told about.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"proxdisc"
)

func main() {
	// A heavy-tailed router-level Internet map: 1000 backbone routers plus
	// 1200 degree-1 edge routers that hosts attach to, 8 landmarks placed
	// on medium-degree routers, 5 neighbours per answer.
	sim, err := proxdisc.NewSimulation(proxdisc.SimulationConfig{
		Topology: proxdisc.TopologyConfig{
			CoreRouters:  1000,
			LeafRouters:  1200,
			EdgesPerNode: 2,
			Seed:         7,
		},
		NumLandmarks: 8,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Join 1000 peers through the full two-round protocol: each probes the
	// landmarks, traceroutes to the closest one, and reports its path.
	if err := sim.JoinN(1000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment ready: %d peers across %d landmarks\n",
		sim.Server.NumPeers(), len(sim.Landmarks))

	// A newcomer arrives at a fresh edge router.
	newcomerAtt := sim.LeafPool[0]
	answer, err := sim.JoinPeer(100001, newcomerAtt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnewcomer attached at router %d; server's answer:\n", newcomerAtt)

	// Verify the answer against ground truth: hop distance from the
	// newcomer's router to each suggested peer.
	dist, err := proxdisc.HopDistances(sim, newcomerAtt)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range answer {
		info, err := sim.Server.PeerInfo(c.Peer)
		if err != nil {
			log.Fatal(err)
		}
		att := sim.Attachments[c.Peer]
		fmt.Printf("  peer %-6d dtree=%-3d true-hops=%-3d (landmark %d)\n",
			c.Peer, c.DTree, dist[att], info.Landmark)
	}

	// How good are the answers across the whole deployment? Compare the
	// server's neighbour sets against the brute-force optimum and random
	// selection (the paper's D / Dclosest / Drandom metrics).
	q, err := sim.EvaluateQuality(200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquality over %d sampled peers:\n", q.Peers)
	fmt.Printf("  D/Dclosest       = %.4f  (1.0 would be optimal)\n", q.DOverDclosest())
	fmt.Printf("  Drandom/Dclosest = %.4f  (what random neighbours cost)\n", q.DrandomOverDclosest())
}
