// Package proxdisc is a library for quick discovery of nearby peers,
// reproducing "A Quicker Way to Discover Nearby Peers" (Simon, Chen,
// Boudani, Straub — ACM CoNEXT 2007).
//
// A newcomer in a peer-to-peer system traceroutes to its closest landmark
// and reports the router path to a management server. The server organizes
// all reported paths in per-landmark prefix trees; the deepest common router
// between two paths yields the inferred distance
//
//	dtree(p,q) = depth(p) + depth(q) − 2·depth(dca(p,q)),
//
// which tracks the true hop distance closely on heavy-tailed router
// topologies. One traceroute is enough for a good answer — no multi-round
// coordinate convergence (Vivaldi/GNP) is needed.
//
// The package offers four levels of entry:
//
//   - the core data structure (NewPathTree) for embedding in other systems;
//   - the management-server logic (NewServer) plus a deployable TCP/UDP
//     front end (ListenAndServe, Dial, Agent);
//   - a landmark-sharded management cluster (NewCluster) that runs N
//     server shards behind one router, with scatter-gather fan-out for
//     cross-landmark operations and live landmark handoff between shards —
//     the same answers as a single server at a multiple of the capacity;
//   - a full simulation environment (NewSimulation) that generates an
//     Internet-like router topology and runs the complete two-round
//     protocol — over a single server or a sharded cluster
//     (SimulationConfig.Shards) — used by the examples and the
//     paper-reproduction harness.
//
// # Wire protocol versions and pipelining
//
// The TCP wire protocol is versioned. Version 1 is strict lock-step: one
// outstanding request per connection, responses in order. Version 2 —
// negotiated automatically at Dial time via a hello/acknowledge exchange —
// tags every frame with a request ID, so a single connection carries many
// concurrent requests: the client pipelines them, the server dispatches
// them to a bounded worker pool (NetServerConfig.Workers), and responses
// are matched by ID as they complete. Compatibility is two-way: a new
// client falls back to lock-step against an old server (which rejects the
// hello as an unknown message and keeps the connection usable), and an old
// client that never sends a hello gets the serial version-1 treatment from
// a new server.
//
// Version 2 also adds batched joins: Client.JoinBatch packs up to the
// server's advertised limit (at most 32, the wire cap) of joins into one
// frame, and the management plane applies each group under a single lock
// acquisition — the fast path for a flash crowd of newcomers arriving
// behind one NAT or agent. ClientConfig.MaxInFlight bounds a connection's
// outstanding requests; SimulationConfig.BatchSize routes simulated
// arrivals through the same batched path. For capacity measurements, the
// cmd/proxdisc-loadgen tool drives all four traffic shapes (lock-step or
// pipelined, singular or batched) against a live server and reports
// joins/sec with latency percentiles.
//
// # Replication and failover
//
// A sharded cluster can keep R copies of every shard's state
// (ClusterConfig.Replicas; the default 1 is unreplicated). Writes — joins,
// batch joins, leaves, refreshes, super-peer flags, TTL expiries — apply
// to the shard's primary replica and propagate to the others through a
// per-shard ordered apply log before the call returns, so every live
// replica is an exact copy: reads may be served by any of them, and the
// answers are identical. The consistency guarantee is therefore
// read-your-writes with no replica lag; the price is one in-memory apply
// per replica on the write path, not a network round trip, since replicas
// share the process.
//
// A replica crash (simulated with Cluster.FailShard / FailReplica, or
// driven by the ClusterConfig.HealthCheck hook via CheckHealth) tolerates
// up to R−1 failures per shard with zero lost peers: a surviving replica
// is promoted after replaying any unapplied log tail, and joins arriving
// inside the promotion window buffer and replay against the new primary —
// the same contract landmark handoffs give. Cluster.RecoverReplica
// rebuilds a failed copy from a survivor's snapshot plus the writes logged
// during the rebuild, restoring the replication factor without pausing
// the write path.
//
// Across processes, a NetServer can front a replica in RoleReplica: it
// serves reads from the local copy and answers writes with a redirect to
// the primary (joins) or its address (everything else), which Client
// follows; ClientConfig.FailoverRetries adds bounded-backoff redials after
// node crashes. SimulationConfig.Replicas and .Failovers run whole
// simulations over the replicated plane with scheduled crash/recover
// events.
//
// # Durability and recovery
//
// Every mutation of the management plane — a join, a batched join, a
// leave, a refresh, a super-peer flag, a TTL expiry sweep — is one typed
// operation with one canonical binary encoding. The same op value is
// applied to the primary, propagated to replicas, and (on durable nodes)
// persisted, so the replica stream and the on-disk stream can never
// disagree. Ops are deterministic: joins and refreshes carry their apply
// timestamp and an expiry sweep carries its deadline, which is why a
// replayed stream reproduces the original state exactly, TTL bookkeeping
// included.
//
// Setting ClusterConfig.DataDir makes a node durable. Acknowledged writes
// are appended to a segmented, CRC-framed write-ahead log before the call
// returns; concurrent writers share fsyncs through group commit, so the
// durability cost amortizes under load. The cluster's state is
// periodically snapshotted to the same directory (every
// ClusterConfig.SnapshotEvery ops, in the background, and again on
// Cluster.Close), after which the log is truncated at the snapshot
// boundary — the disk footprint is bounded by the snapshot cadence.
// NewCluster on a populated directory recovers before returning: it
// restores the latest snapshot into the shards and replays the log tail
// through the normal apply path, so a restarted node serves the exact
// peer set (and, for joins that arrived over the wire, the exact overlay
// addresses) it acknowledged before the crash. A record torn by the crash
// itself was never acknowledged and is dropped by CRC. Expiry sweeps are
// logged as a single deadline-carrying op, not as per-peer leaves, so
// logs stay compact and every copy re-derives the identical expiry set.
//
// The TCP front end participates too: NetServerConfig.DataDir persists
// the forwarded-peer ownership map through the same machinery, so a
// restarted node keeps proxying follow-up requests for peers whose joins
// it forwarded to other cluster nodes. cmd/proxdisc-server wires both
// with -data-dir and shuts down cleanly on SIGINT/SIGTERM: connections
// drain, a final snapshot lands, and the WAL closes, leaving an empty
// tail for the next start.
//
// Group commit can additionally be latency-shaped: ClusterConfig.
// MaxSyncDelay holds each fsync open for a sub-millisecond window so that
// writers arriving during it share the sync — under light load this
// trades a bounded latency bump for far fewer fsyncs (the counters are in
// the cluster's DurabilityStats). Checkpoint cadence is adaptive:
// ClusterConfig.SnapshotBytes triggers a snapshot once that many log
// bytes accumulate — tracking the actual recovery-replay cost — with
// SnapshotEvery as the op-count fallback.
//
// # Cross-process replication
//
// A durable node's write-ahead log doubles as a replication stream:
// because every mutation is one canonically encoded op with one sequence
// number, shipping the log IS shipping the state. A follower process
// (StartFollower, or proxdisc-server -follow ADDR) subscribes to a
// primary's committed op stream over the v2 wire framing and applies
// every record to a local copy through the same single Apply door the
// in-process replicas and crash recovery use — one op.Replicator
// interface, three consumers, zero drift.
//
// Roles. The primary serves the stream from its WAL: live records flow
// from a commit tap into each follower's bounded buffer, a follower that
// lags is fed by reading the log's files (the WAL is the retention
// buffer — a slow follower costs a file read, not memory), and a follower
// behind the log's retention floor — it reconnected after the primary
// compacted — receives the latest on-disk snapshot plus the tail after
// it. The follower node fronts its copy with a replica-role NetServer:
// reads are served locally, writes redirect to the primary.
//
// Acknowledged offsets and flow control. Followers acknowledge their
// applied sequence; the primary sends at most a bounded window beyond the
// last ack, so a stalled follower exerts backpressure on its own stream
// instead of ballooning the primary. Acks double as the idle stream's
// heartbeat (the primary answers with head announcements), which is also
// how a follower knows its lag.
//
// Catch-up. A follower that disconnects — crash, partition, restart —
// redials with its applied sequence and resumes exactly there: from the
// WAL tail when the primary still retains it, from snapshot + tail when
// it does not. Snapshot restore replaces the local copy rather than
// merging, so peers that departed during the outage disappear from the
// follower too. Convergence is exact: a follower that has applied the
// primary's head serializes to a byte-identical snapshot.
//
// Monitoring. Status responses (Client.Status) carry the durable
// telemetry: last snapshot sequence, WAL tail length, recovery replay
// time, and — on follower nodes — the applied/head pair whose difference
// is the replication lag. Telemetry-aware nodes additionally report their
// peer count, worker-queue depth, served-request total, and WAL fsync
// count in the same response; the decoder tolerates older nodes that omit
// them. SimulationConfig.Followers attaches wire-level followers to a
// simulated deployment, and proxdisc-server logs lag and group-commit
// batching on a live node.
//
// # Elastic resharding
//
// Landmark ownership is not fixed at construction. Cluster.MoveLandmark
// transfers one landmark's path tree between shards while the cluster
// keeps serving: only the source/destination shard pair freezes for the
// copy — every other shard accepts writes throughout — and reads are
// answered the whole time. A move is a first-class logged operation in
// the same canonical op stream as joins and leaves: it is committed to
// the write-ahead log, shipped to followers, and replayed by crash
// recovery, so a restarted node reconstructs the exact post-move
// ownership no matter where a crash landed — mid-copy, between the copy
// and the table flip, or between the flip and the commit — with exactly
// one shard owning the landmark and zero peers lost.
//
// Each move increments the landmark's fencing epoch, a monotonic counter
// persisted in snapshots and carried by the move op. Writers that route
// by a cached ownership table can stamp their ops with the epoch they
// observed (redirects carry the current epoch for this purpose); a
// mutation carrying a stale epoch is rejected loudly with a
// stale-epoch error instead of being applied to the wrong shard — the
// classic lost-update window between "looked up the owner" and "applied
// the write" closes. Unstamped ops remain valid: fencing is opt-in per
// write, not a wire break.
//
// ClusterConfig.Shards may exceed the landmark count: surplus shards
// start empty and become useful the moment a landmark moves onto them.
// Setting ClusterConfig.RebalanceInterval starts a load-driven
// rebalancer that periodically compares per-shard peer populations and
// issues fenced moves — largest movable landmark first, fullest shard to
// emptiest — until shard loads are within RebalanceMinGap of each other;
// Cluster.Rebalance runs one such pass on demand. Scaling out is
// therefore: restart (or build) the cluster with more shards and let the
// rebalancer fill them, or aim MoveLandmark by hand. The handoff counter
// is proxdisc_handoffs_total.
//
// # Live subscriptions
//
// The op stream also drives a push-based read plane. Instead of polling
// Client.Lookup, a peer registers a live Query with Client.Subscribe: the
// server evaluates every committed op against the subscription's filter
// and pushes only the deltas — a peer entering the answer set
// (EventEnter), leaving it (EventLeave), or changing inside it
// (EventUpdate). Three filters exist, built with KClosestQuery, PeerQuery,
// and LandmarkQuery: a registered peer's k-closest answer set (the push
// form of Lookup, re-evaluated incrementally through the same path trees),
// one peer's registration, and a whole landmark tree's membership.
//
// The subscription maintains a coherent local cache of the current answer.
// Client.CachedLookup answers a k-closest query from that cache when a
// covering subscription is live — zero round trips, zero server work — and
// falls back to the wire transparently when none is. Pushed candidates
// travel through the same address-resolution path as pull answers, so at
// any quiescent point the cache is byte-identical to what a fresh Lookup
// would return.
//
// Delivery is bounded end to end: each subscription has a fixed server-
// side queue; a consumer that falls behind first has same-peer events
// coalesced, then has its backlog dropped and replaced by one EventResync
// carrying the full refreshed answer — the commit path never blocks on a
// slow subscriber. A resync is also how a freshly reconnected subscription
// rebuilds: after a connection death or a primary failover the client re-
// subscribes (following CodeNotPrimary with bounded backoff, sharing the
// learned primary with the owning client's request routing) and installs
// the new snapshot. Consumers therefore handle exactly one degraded mode:
// replace state on resync, apply deltas otherwise. Follower nodes serve
// subscriptions from their applied stream, scaling the push read plane out
// with the replication tree. The plane's series are proxdisc_sub_active,
// proxdisc_sub_events_total, proxdisc_sub_coalesced_total,
// proxdisc_sub_dropped_total, and proxdisc_sub_resyncs_total.
//
// # Context-first API
//
// Every Client request method has a context-first form — JoinContext,
// LookupContext, StatusContext, LandmarksContext, LeaveContext,
// RefreshContext, JoinBatchContext, ForwardJoinContext,
// ForwardJoinBatchContext, Subscribe — that accepts a context.Context as
// the cancellation and deadline primitive: the effective bound of each
// exchange is the tighter of ClientConfig.Timeout and the context's
// deadline, retry backoffs abort when the context ends, and a
// subscription's context scopes its whole lifetime. The original methods
// (Join, Lookup, Status, ...) remain as thin compatibility wrappers over
// context.Background(). Shared configuration knobs (telemetry registry,
// logger, reconnect backoff) are collapsing into an embedded CommonConfig
// on ClientConfig, NetServerConfig, and FollowerConfig; the old flat
// fields keep working but are deprecated.
//
// # Observability
//
// Every layer instruments itself into a telemetry registry — a
// dependency-free metric store whose hot path is a couple of atomic
// operations on pre-resolved handles (zero allocations, no locks, no
// lookups per request). Components accept a *TelemetryRegistry in their
// configs (ClusterConfig.Telemetry, NetServerConfig.Telemetry,
// FollowerConfig.Telemetry, ClientConfig.Telemetry); pass the process
// default from Telemetry() to aggregate one process's layers into one
// scrape, or a fresh registry to keep planes separate. A nil registry
// costs nothing and records nothing.
//
// The registry serves the Prometheus text exposition. MetricsHandler
// wraps a registry for embedding into any HTTP mux;
// cmd/proxdisc-server -metrics-addr ADDR serves a full operational
// endpoint — /metrics, expvar at /debug/vars, and net/http/pprof under
// /debug/pprof/ — next to the node. The server binary also logs
// structured records via log/slog (-log-level picks the floor) and, with
// -slow-op DURATION, warns about every request served slower than the
// threshold, tagged with its request ID and message type
// (NetServerConfig.SlowOpThreshold and .SlowOp are the library-level
// hooks).
//
// The exported series, by layer:
//
//   - Front end: proxdisc_requests_total{type=...} and
//     proxdisc_request_duration_seconds{type=...} per message type;
//     proxdisc_worker_queue_depth, proxdisc_worker_pool_size, and
//     proxdisc_worker_queue_saturation_total for the pipelined worker
//     pool.
//   - Replication, primary side: proxdisc_followers_connected;
//     proxdisc_follower_acked_seq{follower=ADDR} and
//     proxdisc_follower_lag{follower=ADDR} per connected follower
//     (unregistered when it departs);
//     proxdisc_follower_send_window_stalls_total and
//     proxdisc_follower_snapshot_catchups_total.
//   - Replication, follower side: proxdisc_follow_applied_seq,
//     proxdisc_follow_head_seq, proxdisc_follow_lag, and
//     proxdisc_follow_reconnects_total.
//   - Cluster: proxdisc_peers; proxdisc_shard_peers{shard=N} and
//     proxdisc_shard_apply_total{shard=N} per shard;
//     proxdisc_scatter_fanout_total, proxdisc_handoffs_total, and
//     proxdisc_checkpoint_duration_seconds.
//   - Write-ahead log: proxdisc_wal_appends_total,
//     proxdisc_wal_fsyncs_total, proxdisc_wal_synced_records_total, and
//     proxdisc_wal_append_duration_seconds.
//   - Client: proxdisc_client_inflight, proxdisc_client_retries_total,
//     proxdisc_client_redirects_total, and
//     proxdisc_client_failovers_total.
//   - Go runtime (via telemetry.RegisterGoMetrics, on by default in
//     proxdisc-server): go_goroutines, go_memstats_* heap and GC gauges,
//     and go_gc_* cycle and pause counters.
//
// Histograms use power-of-two latency buckets from 1µs to ~69s and export
// cumulative _bucket/_sum/_count series; quantiles (Histogram.Quantile)
// interpolate within the covering bucket, accurate to within a factor of
// two anywhere in the range.
//
// # Performance
//
// The serving hot path is engineered around four properties, each pinned
// by a benchmark gate in CI.
//
// Zero-allocation codecs. Encoding an op for the WAL or the replication
// stream, framing op records for followers, and the full client-side join
// request/response round trip (AppendJoinRequest/DecodeJoinRequestInto
// and friends in the wire layer) run at 0 allocs/op: buffers come from
// internal freelists and return to them when the connection writer is
// done, so a node at steady state produces no codec garbage for the GC to
// chase. The allocs/op gate in CI fails if any of these paths ever
// allocates again.
//
// Reads never wait on writers. Each server shard keeps two copies of its
// state in a left-right arrangement: writers mutate the off-line copy,
// publish it with one atomic pointer swap, then replay the mutation on
// the retired copy. Lookups acquire the live copy with an atomic load —
// no read lock on the query path — so a burst of joins cannot add
// latency to concurrent lookups, and a long lookup cannot stall the write
// plane. The cost is that every write applies twice; the write path is
// batch-amortized to pay it back.
//
// Writes are batch-amortized end to end. A batched join travels as one
// wire frame, applies under one lock acquisition per touched shard,
// commits as exactly ONE write-ahead-log record, and shares its fsync
// with concurrent batches through the group-commit window — so the
// per-join cost of durability shrinks with load instead of growing.
// Checkpoints are shaped the same way: a snapshot serializes to memory
// under the cluster's locks (fast), then streams to disk lock-free;
// ClusterConfig.CheckpointBytesPerSec caps that background write rate so
// a multi-gigabyte snapshot cannot monopolize the disk the WAL's fsyncs
// are latency-bound on.
//
// The write plane scales with cores. Three structures remove the
// serial bottlenecks a many-core run exposes:
//
//   - Sharded write-ahead log. A durable cluster keeps one segment stream
//     per shard (files named wal-<shard>-<seq>.seg), each with its own
//     append mutex, so commits to different shards never queue on a single
//     log lock. Records still carry one global sequence, and a
//     cross-stream group-commit coordinator shares fsyncs: the sync leader
//     flushes every dirty stream's buffer, fsyncs them, and acknowledges
//     all records up to the captured sequence at once — concurrent
//     committers on different shards ride one disk sync. Recovery
//     merge-replays the streams by global sequence (a k-way merge over
//     per-stream cursors), so the op stream, follower catch-up, and
//     subscription planes see exactly the order a single log would have
//     produced; a directory written by the old single-stream log is
//     adopted read-only and continues under sharded segments.
//
//   - Arena-allocated path-tree nodes. Each tree carves its trie nodes
//     from per-tree slabs and recycles pruned nodes through a free list
//     (the lifetime rule: a node is freed only while the tree's write lock
//     is held and the node is unreachable, so no query ever observes a
//     recycled node; freed nodes keep their maps and slice capacity for
//     the next insert). Steady-state churn therefore retires NO node
//     memory to the garbage collector — BenchmarkPathTreeChurn is pinned
//     at 0 allocs/op in the committed baseline.
//
//   - Coalesced left-right writes. Server writers flat-combine: mutations
//     queue, and the writer that wins the writer mutex applies the whole
//     queue under ONE atomic publication and one pair of grace-period
//     fences, so k contending writers pay one reader-drain instead of k.
//     Hot telemetry counters and gauges are cache-line padded so adjacent
//     metrics updated from different cores do not false-share
//     (BenchmarkTelemetryHotPathParallel is the probe).
//
// BenchmarkMillionPeerNode is the macro proof: one durable node filled to
// a million resident peers over TCP, then measured in steady state. On
// the single-vCPU 2.1 GHz reference box the committed baseline records
// ~52k joins/s at batch=32 (wire to fsync) with lookup p99 under 100µs
// against the million-peer tree. The benchmark scales its offered load
// with GOMAXPROCS (one pipelined connection per processor), and CI also
// runs it at -cpu 1,4: a proxdisc-benchcmp -metric-ratio gate requires
// the 4-CPU variant to sustain at least 1.5x the 1-CPU joins/s of the
// same run, with mutex and block profiles uploaded next to the cpu/heap
// pprofs so any new contention point is visible in the artifacts. A
// joins/s floor gate (cmd/proxdisc-benchcmp -metric) fails any PR that
// walks the throughput back, even where raw ns/op is too noisy to see it.
package proxdisc

import (
	"context"
	"net/http"
	"time"

	"proxdisc/internal/client"
	"proxdisc/internal/cluster"
	"proxdisc/internal/conf"
	"proxdisc/internal/experiment"
	"proxdisc/internal/netserver"
	"proxdisc/internal/overlay"
	"proxdisc/internal/pathtree"
	"proxdisc/internal/proto"
	"proxdisc/internal/routing"
	"proxdisc/internal/server"
	"proxdisc/internal/streaming"
	"proxdisc/internal/telemetry"
	"proxdisc/internal/topology"
	"proxdisc/internal/traceroute"
)

// PeerID identifies a peer.
type PeerID = pathtree.PeerID

// RouterID identifies a router in a topology.
type RouterID = topology.NodeID

// Candidate is one closest-peer answer entry: the peer and its inferred
// path-tree distance in router hops.
type Candidate = pathtree.Candidate

// PathTree is the paper's core data structure: a per-landmark prefix tree
// of router paths supporting O(path length) insertion and O(k·path length)
// exact k-closest queries. Safe for concurrent use.
type PathTree = pathtree.Tree

// PathTreeOptions tunes a PathTree.
type PathTreeOptions = pathtree.Options

// NewPathTree returns an empty path tree rooted at the given landmark
// router.
func NewPathTree(landmark RouterID) *PathTree {
	return pathtree.New(landmark, pathtree.Options{})
}

// ServerConfig configures the management server. See server.Config for
// field documentation.
type ServerConfig = server.Config

// Server is the management server: it stores peer paths in per-landmark
// trees and answers closest-peer queries. Safe for concurrent use.
type Server = server.Server

// NewServer builds a management server for a set of landmark routers.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// ClusterConfig configures a landmark-sharded management cluster. See
// cluster.Config for field documentation.
type ClusterConfig = cluster.Config

// Cluster is a landmark-sharded management service: N server shards behind
// a router that assigns each landmark to a shard, scatter-gathers
// cross-landmark operations, and supports live landmark handoff between
// shards (MoveLandmark). With ClusterConfig.Replicas ≥ 2 each shard is a
// replica set with automatic failover (FailShard, RecoverReplica,
// CheckHealth). With ClusterConfig.DataDir it is durable: writes commit
// to a write-ahead log, snapshots land on disk (Checkpoint), restarts
// recover exactly (see "Durability and recovery" above), and Close shuts
// it down cleanly. It exposes the same API as Server and returns
// identical answers. Safe for concurrent use.
type Cluster = cluster.Cluster

// ClusterAssigner chooses the initial landmark→shard assignment of a
// cluster; see cluster.RoundRobin and cluster.HashMod.
type ClusterAssigner = cluster.Assigner

// ShardHealth describes one cluster shard's replica set: its current
// primary and how many of its configured replicas are live.
type ShardHealth = cluster.ShardHealth

// ClusterReplicaID names one replica of one cluster shard, as reported by
// Cluster.CheckHealth.
type ClusterReplicaID = cluster.ReplicaID

// NewCluster builds a sharded management cluster for a set of landmark
// routers.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// NetServerConfig configures the TCP front end.
type NetServerConfig = netserver.Config

// NetServer is a running TCP management-server front end.
type NetServer = netserver.NetServer

// ListenAndServe exposes a management server over TCP. Close the returned
// NetServer to stop.
func ListenAndServe(cfg NetServerConfig) (*NetServer, error) { return netserver.Listen(cfg) }

// Follower maintains a local copy of a durable primary's state by
// streaming its committed op log over TCP, reconnecting and catching up
// (WAL tail, or snapshot + tail) across failures. See "Cross-process
// replication" above.
type Follower = netserver.Follower

// FollowerConfig configures a Follower: the primary's address, the local
// backend receiving the stream, and the resume point.
type FollowerConfig = netserver.FollowerConfig

// StartFollower dials a durable primary and starts replicating its op
// stream into the configured local backend.
func StartFollower(cfg FollowerConfig) (*Follower, error) { return netserver.StartFollower(cfg) }

// NodeStatus is a node's wire-reported status: replication role, shard
// and replica layout, durability telemetry (snapshot seq, WAL tail,
// replay time), and the applied/head replication position.
type NodeStatus = proto.Status

// TelemetryRegistry is a metric registry: counters, gauges, and latency
// histograms with an allocation-free update path, serialized on demand as
// the Prometheus text exposition. See "Observability" above for the
// series the built-in components export.
type TelemetryRegistry = telemetry.Registry

// Telemetry returns the process-default metric registry — the one
// cmd/proxdisc-server exports and the natural choice for
// ClusterConfig.Telemetry, NetServerConfig.Telemetry,
// FollowerConfig.Telemetry, and ClientConfig.Telemetry when one process
// hosts one node.
func Telemetry() *TelemetryRegistry { return telemetry.Default() }

// MetricsHandler serves a registry's metrics in the Prometheus text
// exposition, for embedding in an existing HTTP mux. (proxdisc-server's
// -metrics-addr serves this plus expvar and pprof.)
func MetricsHandler(r *TelemetryRegistry) http.Handler { return telemetry.Handler(r) }

// LandmarkResponder answers UDP RTT probes for one landmark.
type LandmarkResponder = netserver.LandmarkResponder

// ListenLandmark starts a landmark probe responder on a UDP address.
func ListenLandmark(addr string) (*LandmarkResponder, error) {
	return netserver.ListenLandmark(addr)
}

// Client is a TCP connection to a management server. It is safe for
// concurrent use; on a pipelined (version-2) connection, concurrent
// requests share the connection without serializing behind each other.
type Client = client.Client

// ClientConfig tunes a management-server connection: request timeout,
// the in-flight pipelining cap, a switch to force the version-1 lock-step
// protocol, and the failover retry budget (FailoverRetries,
// FailoverBackoff) for replicated deployments.
type ClientConfig = client.Config

// CommonConfig holds the configuration knobs shared by the networked
// components — a telemetry registry, a diagnostic logger, a reconnect/
// retry backoff. It is embedded in ClientConfig, NetServerConfig, and
// FollowerConfig, replacing their individually duplicated fields (which
// remain as deprecated aliases).
type CommonConfig = conf.Common

// BatchJoinItem is one entry of a Client.JoinBatch call.
type BatchJoinItem = client.BatchItem

// BatchJoinResult is the per-entry outcome of a Client.JoinBatch call.
type BatchJoinResult = client.BatchResult

// Query describes a read — which peers the caller cares about. One Query
// value drives both the pull path (Client.LookupContext) and the push
// path (Client.Subscribe). Build one with KClosestQuery, PeerQuery, or
// LandmarkQuery.
type Query = client.Query

// QueryKind selects what a Query watches.
type QueryKind = client.QueryKind

// Query kinds.
const (
	// QueryKClosest watches a registered peer's k-closest answer set.
	QueryKClosest = client.QueryKClosest
	// QueryPeer watches one peer's registration.
	QueryPeer = client.QueryPeer
	// QueryLandmark watches every peer under one landmark tree.
	QueryLandmark = client.QueryLandmark
)

// KClosestQuery is the query Lookup and Subscribe share: the k-closest
// answer set of a registered peer, at the server's configured size.
func KClosestQuery(peer PeerID) Query { return client.KClosest(int64(peer)) }

// PeerQuery watches one peer's registration (Subscribe only).
func PeerQuery(peer PeerID) Query { return client.PeerQuery(int64(peer)) }

// LandmarkQuery watches every peer under one landmark tree (Subscribe
// only).
func LandmarkQuery(landmark RouterID) Query { return client.LandmarkQuery(int32(landmark)) }

// Subscription is one live query against a management server, holding a
// coherent local cache of the query's current answer. See "Live
// subscriptions" above.
type Subscription = client.Subscription

// SubscriptionEvent is one pushed subscription delta.
type SubscriptionEvent = client.Event

// Subscription event kinds.
const (
	// EventEnter reports a peer entering the subscribed set.
	EventEnter = client.EventEnter
	// EventLeave reports a peer leaving the subscribed set; a k-closest
	// subscription whose subject itself deregistered reports the subject.
	EventLeave = client.EventLeave
	// EventUpdate reports a peer already in the set whose record changed.
	EventUpdate = client.EventUpdate
	// EventResync replaces the subscriber's whole cached set.
	EventResync = client.EventResync
)

// Subscribe registers a live query over c and returns once the server
// accepted it, with the initial answer already cached. Shorthand for
// c.Subscribe (see Client.Subscribe); the subscription runs until ctx
// ends or Close is called.
func Subscribe(ctx context.Context, c *Client, q Query) (*Subscription, error) {
	return c.Subscribe(ctx, q)
}

// Dial connects to a management server with default configuration,
// negotiating the pipelined wire protocol when the server supports it.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return client.Dial(addr, timeout)
}

// DialClient connects to a management server with explicit configuration.
func DialClient(addr string, cfg ClientConfig) (*Client, error) {
	return client.DialConfig(addr, cfg)
}

// Agent runs the complete newcomer protocol: probe landmarks over UDP,
// obtain the router path to the closest one from a PathProvider, and join
// through the management server.
type Agent = client.Agent

// PathProvider abstracts the traceroute-like tool.
type PathProvider = client.PathProvider

// PathProviderFunc adapts a function to PathProvider.
type PathProviderFunc = client.PathProviderFunc

// WireCandidate is a closest-peer answer received over the network; unlike
// Candidate it carries the peer's dialable overlay address.
type WireCandidate = proto.Candidate

// SimulationConfig configures a simulated deployment. See
// experiment.WorldConfig for field documentation.
type SimulationConfig = experiment.WorldConfig

// SimFailoverEvent schedules a management-plane crash or recovery at a
// point in a simulation's arrival sequence (SimulationConfig.Failovers).
type SimFailoverEvent = experiment.FailoverEvent

// Simulation is a complete in-process deployment over a generated
// router-level topology: landmarks, tracer, and management server.
type Simulation = experiment.World

// NewSimulation builds a simulated deployment.
func NewSimulation(cfg SimulationConfig) (*Simulation, error) {
	return experiment.BuildWorld(cfg)
}

// HopDistances returns the hop distance from one router to every router of
// the simulation's topology (routing.Unreachable, −1, for disconnected
// routers). Examples and applications use it to score neighbour sets.
func HopDistances(sim *Simulation, from RouterID) ([]int32, error) {
	return routing.BFSDistances(sim.Graph, from)
}

// Overlay is the peer mesh built from closest-peer answers. Safe for
// concurrent use.
type Overlay = overlay.Overlay

// OverlayPeer describes one overlay participant.
type OverlayPeer = overlay.Peer

// NewOverlay returns an empty overlay mesh.
func NewOverlay() *Overlay { return overlay.New() }

// StreamConfig tunes a simulated live-streaming session.
type StreamConfig = streaming.Config

// StreamResult aggregates a finished streaming session.
type StreamResult = streaming.Result

// StreamSession is a mesh-based live-streaming broadcast simulation.
type StreamSession = streaming.Session

// HopFunc reports the underlay hop distance between two peers.
type HopFunc = streaming.HopFunc

// NewStreamSession prepares a broadcast from source over the mesh; hops
// supplies ground-truth hop distances (see HopDistances).
func NewStreamSession(mesh *Overlay, source PeerID, hops HopFunc, cfg StreamConfig) (*StreamSession, error) {
	return streaming.NewSession(mesh, source, hops, cfg)
}

// TopologyConfig configures topology generation for simulations.
type TopologyConfig = topology.Config

// TraceConfig tunes the simulated traceroute tool.
type TraceConfig = traceroute.Config

// DefaultTopology returns the paper-scale heavy-tailed router map
// configuration (~4000 routers, half of them degree-1 edge routers).
func DefaultTopology() TopologyConfig { return topology.DefaultConfig() }
