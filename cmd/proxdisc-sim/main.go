// Command proxdisc-sim reproduces the paper's evaluation and the ablation
// studies on simulated Internet-like topologies.
//
// Usage:
//
//	proxdisc-sim -experiment fig1 [-seed 1] [-csv]
//	proxdisc-sim -experiment all
//
// Experiments: fig1, landmarks, placement, quickness, topology, churn,
// superpeers, truncation, streaming, handover, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"proxdisc/internal/experiment"
	"proxdisc/internal/metrics"
	"proxdisc/internal/topology"
)

func main() {
	var (
		expName = flag.String("experiment", "fig1", "experiment to run: fig1|landmarks|placement|quickness|topology|churn|superpeers|truncation|streaming|handover|all")
		seed    = flag.Int64("seed", 1, "master random seed")
		peers   = flag.Int("peers", 1000, "peer population for ablation experiments")
		sample  = flag.Int("sample", 200, "evaluated peers per data point (0 = all, slow)")
		counts  = flag.String("peer-counts", "600,800,1000,1200,1400", "comma-separated x-axis for fig1")
		repeats = flag.Int("repeats", 1, "replicate fig1 over this many topology seeds (mean ± sd)")
		lms     = flag.Int("landmarks", 8, "number of landmarks")
		core    = flag.Int("core-routers", 2000, "core routers in the generated map")
		leaves  = flag.Int("leaf-routers", 2000, "degree-1 edge routers in the generated map")
		model   = flag.String("model", "barabasi-albert", "topology model: barabasi-albert|glp|waxman|transit-stub")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	m, err := topology.ParseModel(*model)
	if err != nil {
		fatal(err)
	}
	base := experiment.WorldConfig{
		Topology: topology.Config{
			Model:        m,
			CoreRouters:  *core,
			LeafRouters:  *leaves,
			EdgesPerNode: 2,
			Seed:         *seed,
		},
		NumLandmarks: *lms,
		Seed:         *seed,
	}
	run := func(name string) {
		start := time.Now()
		table, err := runExperiment(name, base, *seed, *peers, *sample, *counts, *repeats)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		if *csvOut {
			fmt.Print(table.CSV())
		} else {
			fmt.Println(table.Format())
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if *expName == "all" {
		for _, name := range []string{"fig1", "landmarks", "placement", "quickness",
			"topology", "churn", "superpeers", "truncation", "streaming", "handover"} {
			run(name)
		}
		return
	}
	run(*expName)
}

func runExperiment(name string, base experiment.WorldConfig, seed int64, peers, sample int, countsCSV string, repeats int) (*metrics.Table, error) {
	switch name {
	case "fig1":
		peerCounts, err := parseCounts(countsCSV)
		if err != nil {
			return nil, err
		}
		cfg := experiment.Fig1Config{PeerCounts: peerCounts, SamplePeers: sample, Repeats: repeats, World: base}
		res, err := experiment.RunFig1(cfg)
		if err != nil {
			return nil, err
		}
		return res.Table(), nil
	case "landmarks":
		res, err := experiment.RunLandmarkCountSweep(base, nil, peers, sample)
		if err != nil {
			return nil, err
		}
		return res.Table(), nil
	case "placement":
		res, err := experiment.RunPlacementSweep(base, peers, sample)
		if err != nil {
			return nil, err
		}
		return res.Table(), nil
	case "quickness":
		res, err := experiment.RunQuickness(experiment.QuicknessConfig{
			World: base, SamplePeers: sample,
		})
		if err != nil {
			return nil, err
		}
		return res.Table(), nil
	case "topology":
		res, err := experiment.RunTopologySweep(base, peers, sample)
		if err != nil {
			return nil, err
		}
		return res.Table(), nil
	case "churn":
		res, err := experiment.RunChurn(experiment.ChurnConfig{
			World: base, Arrivals: peers, SamplePeers: sample,
		})
		if err != nil {
			return nil, err
		}
		return res.Table(), nil
	case "superpeers":
		res, err := experiment.RunSuperPeerSweep(base, nil, peers, sample)
		if err != nil {
			return nil, err
		}
		return res.Table(), nil
	case "truncation":
		res, err := experiment.RunTruncationSweep(base, peers, sample)
		if err != nil {
			return nil, err
		}
		return res.Table(), nil
	case "handover":
		res, err := experiment.RunHandover(base, peers, 0.2, sample)
		if err != nil {
			return nil, err
		}
		return res.Table(), nil
	case "streaming":
		res, err := experiment.RunStreaming(experiment.StreamingConfig{
			World: base, Peers: min(peers, 400),
		})
		if err != nil {
			return nil, err
		}
		return res.Table(), nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad peer count %q: %w", part, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no peer counts in %q", s)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "proxdisc-sim:", err)
	os.Exit(1)
}
