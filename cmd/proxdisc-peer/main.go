// Command proxdisc-peer joins a proxdisc management server as one peer.
//
// The router path to the landmark is supplied with -path (comma-separated
// router IDs, peer-side first, ending at a landmark ID); in a real
// deployment this would come from the system traceroute tool. The command
// probes every advertised landmark over UDP, reports the path, prints the
// closest-peer answer, and optionally keeps refreshing until interrupted.
//
// Usage:
//
//	proxdisc-peer -server 127.0.0.1:7470 -id 42 -path 101,55,12,0
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"proxdisc/internal/client"
)

func main() {
	var (
		serverAddr = flag.String("server", "127.0.0.1:7470", "management server TCP address")
		id         = flag.Int64("id", 0, "peer identifier (required, > 0)")
		pathCSV    = flag.String("path", "", "router path to the landmark: comma-separated IDs, peer-side first (required)")
		overlay    = flag.String("overlay-addr", "", "advertised overlay address for other peers")
		stay       = flag.Bool("stay", false, "keep the registration alive with heartbeats until interrupted")
		heartbeat  = flag.Duration("heartbeat", 10*time.Second, "refresh period with -stay")
		timeout    = flag.Duration("timeout", 5*time.Second, "request timeout")
	)
	flag.Parse()
	if *id <= 0 {
		log.Fatal("proxdisc-peer: -id is required and must be positive")
	}
	path, err := parsePath(*pathCSV)
	if err != nil {
		log.Fatalf("proxdisc-peer: %v", err)
	}

	c, err := client.Dial(*serverAddr, *timeout)
	if err != nil {
		log.Fatalf("proxdisc-peer: %v", err)
	}
	defer c.Close()

	// First round: measure landmarks (informational when -path is given
	// explicitly; in a traceroute-equipped deployment the Agent would pick
	// the closest landmark automatically).
	if lms, err := c.Landmarks(); err == nil && len(lms.Routers) > 0 {
		measured := client.ProbeLandmarks(lms, 3, *timeout)
		for _, lm := range measured {
			log.Printf("landmark %d at %s: rtt %v", lm.Router, lm.Addr, lm.RTT)
		}
	}

	// Second round: report the path, receive the closest peers.
	cands, err := c.Join(*id, *overlay, path)
	if err != nil {
		log.Fatalf("proxdisc-peer: join: %v", err)
	}
	if len(cands) == 0 {
		fmt.Println("joined; no peers nearby yet")
	} else {
		fmt.Println("closest peers:")
		for _, cand := range cands {
			fmt.Printf("  peer %d  dtree=%d  addr=%s\n", cand.Peer, cand.DTree, cand.Addr)
		}
	}

	if !*stay {
		return
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := c.Refresh(*id); err != nil {
				log.Printf("heartbeat: %v", err)
			}
		case <-stop:
			if err := c.Leave(*id); err != nil {
				log.Printf("leave: %v", err)
			}
			return
		}
	}
}

func parsePath(s string) ([]int32, error) {
	if s == "" {
		return nil, fmt.Errorf("-path is required")
	}
	var out []int32
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad router %q: %w", part, err)
		}
		out = append(out, int32(id))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty path")
	}
	return out, nil
}
