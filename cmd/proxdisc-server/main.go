// Command proxdisc-server runs a proxdisc management server over TCP,
// optionally hosting landmark UDP probe responders in the same process (for
// single-machine and testbed deployments).
//
// Usage:
//
//	proxdisc-server -addr 127.0.0.1:7470 -landmarks 10,20,30 -host-landmarks
//	proxdisc-server -landmarks 10,20,30,40 -shards 4
//	proxdisc-server -landmarks 10,20 -data-dir /var/lib/proxdisc            # durable primary
//	proxdisc-server -landmarks 10,20 -follow primary-host:7470              # follower
//	proxdisc-server -landmarks 10 -metrics-addr 127.0.0.1:7471             # + ops endpoint
//
// Each landmark is a router identifier; peers report traceroute paths that
// terminate at one of them. With -host-landmarks the process also answers
// UDP probes for each landmark and advertises those addresses to clients.
// With -shards N the management plane runs as a landmark-sharded cluster of
// N shards behind one TCP front end. With -follow ADDR the process is a
// follower: it streams the durable primary's committed op log over TCP,
// applies it to a local copy (catching up from a shipped snapshot when it
// is behind the log's retention), serves reads from that copy, redirects
// writes to the primary, and logs its replication lag.
//
// With -metrics-addr the process serves its operational surface over HTTP:
// Prometheus metrics at /metrics, expvar at /debug/vars, and the pprof
// profiling handlers under /debug/pprof/. Logging is structured (log/slog,
// text to stderr); -log-level picks the floor and -slow-op reports every
// request served slower than the given threshold at warning level with its
// request ID and message type.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"proxdisc/internal/cluster"
	"proxdisc/internal/netserver"
	"proxdisc/internal/pathtree"
	"proxdisc/internal/proto"
	"proxdisc/internal/server"
	"proxdisc/internal/telemetry"
	"proxdisc/internal/topology"
	"proxdisc/internal/wal"
)

// management is what main drives beyond the wire interface: expiry sweeps
// and the final stats print. Both server.Server and cluster.Cluster
// implement it.
type management interface {
	netserver.Backend
	Expire() []pathtree.PeerID
	Stats() server.Stats
}

// die logs at error level and exits; the fatal path of a slog binary.
func die(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7470", "TCP listen address")
		landmarks   = flag.String("landmarks", "0", "comma-separated landmark router IDs")
		lmAddrsCSV  = flag.String("landmark-addrs", "", "comma-separated UDP probe addresses, one per landmark (advertised to clients)")
		hostLMs     = flag.Bool("host-landmarks", false, "run UDP probe responders for all landmarks in this process")
		neighbors   = flag.Int("neighbors", server.DefaultNeighborCount, "closest peers returned per query")
		ttl         = flag.Duration("peer-ttl", 0, "expire peers silent for this long (0 = never)")
		sweep       = flag.Duration("sweep-interval", 30*time.Second, "expiry sweep period when -peer-ttl is set")
		shards      = flag.Int("shards", 1, "run a landmark-sharded cluster of this many shards")
		replicas    = flag.Int("replicas", 1, "copies of each shard's state (replica sets with automatic failover)")
		role        = flag.String("role", "primary", "this node's replication role: primary or replica (replica governs wire behaviour; its state must be fed out of band, e.g. snapshot shipping)")
		primAddr    = flag.String("primary-addr", "", "the primary node's TCP address (required with -role replica)")
		workers     = flag.Int("workers", 0, "pipelined-request worker pool size (0 = 4×GOMAXPROCS)")
		maxBatch    = flag.Int("max-batch", 0, "largest batch join accepted (0 = wire-format maximum)")
		dataDir     = flag.String("data-dir", "", "directory for durable state (WAL + snapshots); restart recovers the acknowledged peer set")
		follow      = flag.String("follow", "", "run as a follower of the durable primary at this TCP address: stream its op log, apply it to a local copy, serve reads (implies -role replica)")
		syncDelay   = flag.Duration("max-sync-delay", 0, "hold each WAL group-commit fsync open this long so light load batches syncs (e.g. 500us; 0 = sync immediately)")
		snapBytes   = flag.Int64("snapshot-bytes", 0, "checkpoint after this many WAL bytes accumulate (0 = 4 MiB default, negative = op-count trigger only)")
		metricsAddr = flag.String("metrics-addr", "", "HTTP listen address for the ops endpoint (/metrics, /debug/vars, /debug/pprof/); empty = disabled")
		logLevel    = flag.String("log-level", "info", "log floor: debug, info, warn, or error")
		slowOp      = flag.Duration("slow-op", 0, "warn about any request served slower than this (0 = disabled)")
	)
	flag.Parse()

	lvl := new(slog.LevelVar)
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "proxdisc-server: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(1)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
	// Printf-style diagnostics from the libraries flow into slog at info.
	logf := func(format string, args ...any) { slog.Info(fmt.Sprintf(format, args...)) }

	reg := telemetry.Default()
	telemetry.RegisterGoMetrics(reg)
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			die("metrics listener failed", "addr", *metricsAddr, "err", err)
		}
		srv := &http.Server{Handler: telemetry.NewOpsMux(reg)}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				slog.Error("metrics endpoint failed", "err", err)
			}
		}()
		defer srv.Close()
		slog.Info("ops endpoint listening", "addr", ln.Addr().String())
	}

	lmIDs, err := parseLandmarks(*landmarks)
	if err != nil {
		die("bad -landmarks", "err", err)
	}
	if *shards < 1 {
		die("-shards must be at least 1", "shards", *shards)
	}
	if *replicas < 1 {
		die("-replicas must be at least 1", "replicas", *replicas)
	}
	// Follower mode: a wire role of replica whose copy is fed by the
	// primary's op stream instead of out-of-band snapshot shipping. It
	// supplies the primary address, so it must resolve before the role
	// validation below.
	if *follow != "" {
		if *primAddr == "" {
			*primAddr = *follow
		}
		if *shards > 1 || *replicas > 1 {
			die("-follow runs a single local copy; drop -shards/-replicas")
		}
	}
	nodeRole := netserver.RolePrimary
	switch *role {
	case "primary":
	case "replica":
		nodeRole = netserver.RoleReplica
		if *primAddr == "" {
			die("-role replica requires -primary-addr")
		}
	default:
		die("unknown -role", "role", *role)
	}
	if *follow != "" {
		nodeRole = netserver.RoleReplica
	}
	var logic management
	var clu *cluster.Cluster
	if *follow == "" && (*shards > 1 || *replicas > 1 || *dataDir != "") {
		// A durable deployment always runs the cluster plane (a 1-shard,
		// 1-replica cluster answers identically to a standalone server):
		// the cluster owns the WAL and the snapshot cadence.
		clusterDir := ""
		if *dataDir != "" {
			clusterDir = filepath.Join(*dataDir, "cluster")
		}
		clu, err = cluster.New(cluster.Config{
			Landmarks:     lmIDs,
			Shards:        *shards,
			Replicas:      *replicas,
			NeighborCount: *neighbors,
			PeerTTL:       *ttl,
			DataDir:       clusterDir,
			MaxSyncDelay:  *syncDelay,
			SnapshotBytes: *snapBytes,
			Telemetry:     reg,
		})
		logic = clu
	} else {
		// A follower's copy must expire peers only through the primary's
		// replicated ExpireOps — a locally clocked TTL sweep would race
		// in-flight refreshes and permanently diverge the copy (the leave
		// is local, the refresh arrives for a peer already gone).
		localTTL := *ttl
		if *follow != "" {
			localTTL = 0
		}
		var srvLogic *server.Server
		srvLogic, err = server.New(server.Config{
			Landmarks:     lmIDs,
			NeighborCount: *neighbors,
			PeerTTL:       localTTL,
		})
		logic = srvLogic
	}
	if err != nil {
		die("backend start failed", "err", err)
	}
	if clu != nil && clu.NumPeers() > 0 {
		slog.Info("recovered durable state", "peers", clu.NumPeers(), "dir", *dataDir)
		ds := clu.DurabilityStats()
		slog.Info("durable state",
			"snapshot_seq", ds.SnapshotSeq, "wal_tail", ds.TailRecords, "replay", ds.ReplayTime)
	}

	// Follower mode: feed the local copy from the primary's op stream and
	// log the replication position periodically.
	var follower *netserver.Follower
	if *follow != "" {
		fb, ok := logic.(netserver.FollowerBackend)
		if !ok {
			die("follower backend cannot restore snapshots")
		}
		follower, err = netserver.StartFollower(netserver.FollowerConfig{
			PrimaryAddr: *follow,
			Backend:     fb,
			Logf:        logf,
			Telemetry:   reg,
		})
		if err != nil {
			die("follow failed", "primary", *follow, "err", err)
		}
		defer follower.Close()
		go func() {
			t := time.NewTicker(10 * time.Second)
			defer t.Stop()
			for range t.C {
				slog.Info("replication",
					"applied", follower.Applied(), "head", follower.Head(), "lag", follower.Lag())
			}
		}()
	}

	lmAddrs := make(map[topology.NodeID]string)
	if *hostLMs {
		for _, lm := range lmIDs {
			resp, err := netserver.ListenLandmark("127.0.0.1:0")
			if err != nil {
				die("landmark responder failed", "landmark", lm, "err", err)
			}
			defer resp.Close()
			lmAddrs[lm] = resp.Addr()
			slog.Info("landmark probe responder", "landmark", lm, "addr", resp.Addr())
		}
	} else if *lmAddrsCSV != "" {
		parts := strings.Split(*lmAddrsCSV, ",")
		if len(parts) != len(lmIDs) {
			die("landmark address count mismatch", "addrs", len(parts), "landmarks", len(lmIDs))
		}
		for i, lm := range lmIDs {
			lmAddrs[lm] = strings.TrimSpace(parts[i])
		}
	}

	frontDir := ""
	if *dataDir != "" {
		frontDir = filepath.Join(*dataDir, "front")
	}
	var repl netserver.ReplicationStatus
	if follower != nil {
		repl = follower
	}
	ns, err := netserver.Listen(netserver.Config{
		Addr:            *addr,
		Server:          logic,
		LandmarkAddrs:   lmAddrs,
		Role:            nodeRole,
		PrimaryAddr:     *primAddr,
		Workers:         *workers,
		MaxBatch:        *maxBatch,
		DataDir:         frontDir,
		Replication:     repl,
		Logf:            logf,
		Telemetry:       reg,
		SlowOpThreshold: *slowOp,
		SlowOp: func(id uint64, typ proto.MsgType, d time.Duration) {
			slog.Warn("slow request", "id", id, "type", typ.String(), "took", d)
		},
	})
	if err != nil {
		die("listen failed", "addr", *addr, "err", err)
	}
	roleName := *role
	if *follow != "" {
		roleName = fmt.Sprintf("follower of %s", *follow)
	}
	slog.Info("management server listening",
		"addr", ns.Addr(), "landmarks", fmt.Sprint(lmIDs), "k", *neighbors,
		"shards", *shards, "replicas", *replicas, "role", roleName)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *ttl > 0 && *follow == "" {
		ticker := time.NewTicker(*sweep)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				if expired := logic.Expire(); len(expired) > 0 {
					slog.Info("expired silent peers", "count", len(expired))
				}
			}
		}()
	}
	<-stop
	// Graceful shutdown: stop accepting and drain in-flight connections
	// first, then flush a final snapshot and close the WAL cleanly, so the
	// next start replays an empty log tail.
	slog.Info("shutting down: draining connections")
	if err := ns.Close(); err != nil {
		slog.Warn("close", "err", err)
	}
	if follower != nil {
		slog.Info("replication at shutdown",
			"applied", follower.Applied(), "head", follower.Head(), "lag", follower.Lag())
		follower.Close()
	}
	if clu != nil && clu.Durable() {
		ds := clu.DurabilityStats()
		slog.Info("durable state",
			"snapshot_seq", ds.SnapshotSeq, "wal_tail", ds.TailRecords,
			"fsyncs", ds.Log.Fsyncs, "records_per_sync", fmt.Sprintf("%.1f", avgBatch(ds.Log)))
		slog.Info("flushing final snapshot and closing WAL")
		if err := clu.Close(); err != nil {
			slog.Warn("durable close", "err", err)
		}
	}
	st := logic.Stats()
	fmt.Printf("final stats: peers=%d joins=%d leaves=%d expiries=%d queries=%d\n",
		st.Peers, st.Joins, st.Leaves, st.Expiries, st.Queries)
}

// avgBatch is the average group-commit batch: records per fsync.
func avgBatch(m wal.Metrics) float64 {
	if m.Fsyncs == 0 {
		return 0
	}
	return float64(m.SyncedRecords) / float64(m.Fsyncs)
}

func parseLandmarks(s string) ([]topology.NodeID, error) {
	var out []topology.NodeID
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad landmark %q: %w", part, err)
		}
		out = append(out, topology.NodeID(id))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no landmarks in %q", s)
	}
	return out, nil
}
