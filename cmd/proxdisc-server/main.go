// Command proxdisc-server runs a proxdisc management server over TCP,
// optionally hosting landmark UDP probe responders in the same process (for
// single-machine and testbed deployments).
//
// Usage:
//
//	proxdisc-server -addr 127.0.0.1:7470 -landmarks 10,20,30 -host-landmarks
//	proxdisc-server -landmarks 10,20,30,40 -shards 4
//	proxdisc-server -landmarks 10,20 -data-dir /var/lib/proxdisc            # durable primary
//	proxdisc-server -landmarks 10,20 -follow primary-host:7470              # follower
//
// Each landmark is a router identifier; peers report traceroute paths that
// terminate at one of them. With -host-landmarks the process also answers
// UDP probes for each landmark and advertises those addresses to clients.
// With -shards N the management plane runs as a landmark-sharded cluster of
// N shards behind one TCP front end. With -follow ADDR the process is a
// follower: it streams the durable primary's committed op log over TCP,
// applies it to a local copy (catching up from a shipped snapshot when it
// is behind the log's retention), serves reads from that copy, redirects
// writes to the primary, and logs its replication lag.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"proxdisc/internal/cluster"
	"proxdisc/internal/netserver"
	"proxdisc/internal/pathtree"
	"proxdisc/internal/server"
	"proxdisc/internal/topology"
	"proxdisc/internal/wal"
)

// management is what main drives beyond the wire interface: expiry sweeps
// and the final stats print. Both server.Server and cluster.Cluster
// implement it.
type management interface {
	netserver.Backend
	Expire() []pathtree.PeerID
	Stats() server.Stats
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7470", "TCP listen address")
		landmarks  = flag.String("landmarks", "0", "comma-separated landmark router IDs")
		lmAddrsCSV = flag.String("landmark-addrs", "", "comma-separated UDP probe addresses, one per landmark (advertised to clients)")
		hostLMs    = flag.Bool("host-landmarks", false, "run UDP probe responders for all landmarks in this process")
		neighbors  = flag.Int("neighbors", server.DefaultNeighborCount, "closest peers returned per query")
		ttl        = flag.Duration("peer-ttl", 0, "expire peers silent for this long (0 = never)")
		sweep      = flag.Duration("sweep-interval", 30*time.Second, "expiry sweep period when -peer-ttl is set")
		shards     = flag.Int("shards", 1, "run a landmark-sharded cluster of this many shards")
		replicas   = flag.Int("replicas", 1, "copies of each shard's state (replica sets with automatic failover)")
		role       = flag.String("role", "primary", "this node's replication role: primary or replica (replica governs wire behaviour; its state must be fed out of band, e.g. snapshot shipping)")
		primAddr   = flag.String("primary-addr", "", "the primary node's TCP address (required with -role replica)")
		workers    = flag.Int("workers", 0, "pipelined-request worker pool size (0 = 4×GOMAXPROCS)")
		maxBatch   = flag.Int("max-batch", 0, "largest batch join accepted (0 = wire-format maximum)")
		dataDir    = flag.String("data-dir", "", "directory for durable state (WAL + snapshots); restart recovers the acknowledged peer set")
		follow     = flag.String("follow", "", "run as a follower of the durable primary at this TCP address: stream its op log, apply it to a local copy, serve reads (implies -role replica)")
		syncDelay  = flag.Duration("max-sync-delay", 0, "hold each WAL group-commit fsync open this long so light load batches syncs (e.g. 500us; 0 = sync immediately)")
		snapBytes  = flag.Int64("snapshot-bytes", 0, "checkpoint after this many WAL bytes accumulate (0 = 4 MiB default, negative = op-count trigger only)")
	)
	flag.Parse()

	lmIDs, err := parseLandmarks(*landmarks)
	if err != nil {
		log.Fatalf("proxdisc-server: %v", err)
	}
	if *shards < 1 {
		log.Fatalf("proxdisc-server: -shards must be at least 1, got %d", *shards)
	}
	if *replicas < 1 {
		log.Fatalf("proxdisc-server: -replicas must be at least 1, got %d", *replicas)
	}
	// Follower mode: a wire role of replica whose copy is fed by the
	// primary's op stream instead of out-of-band snapshot shipping. It
	// supplies the primary address, so it must resolve before the role
	// validation below.
	if *follow != "" {
		if *primAddr == "" {
			*primAddr = *follow
		}
		if *shards > 1 || *replicas > 1 {
			log.Fatal("proxdisc-server: -follow runs a single local copy; drop -shards/-replicas")
		}
	}
	nodeRole := netserver.RolePrimary
	switch *role {
	case "primary":
	case "replica":
		nodeRole = netserver.RoleReplica
		if *primAddr == "" {
			log.Fatal("proxdisc-server: -role replica requires -primary-addr")
		}
	default:
		log.Fatalf("proxdisc-server: unknown -role %q", *role)
	}
	if *follow != "" {
		nodeRole = netserver.RoleReplica
	}
	var logic management
	var clu *cluster.Cluster
	if *follow == "" && (*shards > 1 || *replicas > 1 || *dataDir != "") {
		// A durable deployment always runs the cluster plane (a 1-shard,
		// 1-replica cluster answers identically to a standalone server):
		// the cluster owns the WAL and the snapshot cadence.
		clusterDir := ""
		if *dataDir != "" {
			clusterDir = filepath.Join(*dataDir, "cluster")
		}
		clu, err = cluster.New(cluster.Config{
			Landmarks:     lmIDs,
			Shards:        *shards,
			Replicas:      *replicas,
			NeighborCount: *neighbors,
			PeerTTL:       *ttl,
			DataDir:       clusterDir,
			MaxSyncDelay:  *syncDelay,
			SnapshotBytes: *snapBytes,
		})
		logic = clu
	} else {
		// A follower's copy must expire peers only through the primary's
		// replicated ExpireOps — a locally clocked TTL sweep would race
		// in-flight refreshes and permanently diverge the copy (the leave
		// is local, the refresh arrives for a peer already gone).
		localTTL := *ttl
		if *follow != "" {
			localTTL = 0
		}
		var srvLogic *server.Server
		srvLogic, err = server.New(server.Config{
			Landmarks:     lmIDs,
			NeighborCount: *neighbors,
			PeerTTL:       localTTL,
		})
		logic = srvLogic
	}
	if err != nil {
		log.Fatalf("proxdisc-server: %v", err)
	}
	if clu != nil && clu.NumPeers() > 0 {
		log.Printf("recovered %d peers from %s", clu.NumPeers(), *dataDir)
		ds := clu.DurabilityStats()
		log.Printf("durable state: snapshot seq %d, wal tail %d records, replay %v",
			ds.SnapshotSeq, ds.TailRecords, ds.ReplayTime)
	}

	// Follower mode: feed the local copy from the primary's op stream and
	// log the replication position periodically.
	var follower *netserver.Follower
	if *follow != "" {
		fb, ok := logic.(netserver.FollowerBackend)
		if !ok {
			log.Fatal("proxdisc-server: follower backend cannot restore snapshots")
		}
		follower, err = netserver.StartFollower(netserver.FollowerConfig{
			PrimaryAddr: *follow,
			Backend:     fb,
			Logf:        log.Printf,
		})
		if err != nil {
			log.Fatalf("proxdisc-server: follow %s: %v", *follow, err)
		}
		defer follower.Close()
		go func() {
			t := time.NewTicker(10 * time.Second)
			defer t.Stop()
			for range t.C {
				log.Printf("replication: applied seq %d, primary head %d, lag %d ops",
					follower.Applied(), follower.Head(), follower.Lag())
			}
		}()
	}

	lmAddrs := make(map[topology.NodeID]string)
	if *hostLMs {
		for _, lm := range lmIDs {
			resp, err := netserver.ListenLandmark("127.0.0.1:0")
			if err != nil {
				log.Fatalf("proxdisc-server: landmark responder: %v", err)
			}
			defer resp.Close()
			lmAddrs[lm] = resp.Addr()
			log.Printf("landmark %d probe responder on %s", lm, resp.Addr())
		}
	} else if *lmAddrsCSV != "" {
		parts := strings.Split(*lmAddrsCSV, ",")
		if len(parts) != len(lmIDs) {
			log.Fatalf("proxdisc-server: %d landmark addresses for %d landmarks", len(parts), len(lmIDs))
		}
		for i, lm := range lmIDs {
			lmAddrs[lm] = strings.TrimSpace(parts[i])
		}
	}

	frontDir := ""
	if *dataDir != "" {
		frontDir = filepath.Join(*dataDir, "front")
	}
	var repl netserver.ReplicationStatus
	if follower != nil {
		repl = follower
	}
	ns, err := netserver.Listen(netserver.Config{
		Addr:          *addr,
		Server:        logic,
		LandmarkAddrs: lmAddrs,
		Role:          nodeRole,
		PrimaryAddr:   *primAddr,
		Workers:       *workers,
		MaxBatch:      *maxBatch,
		DataDir:       frontDir,
		Replication:   repl,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatalf("proxdisc-server: %v", err)
	}
	roleName := *role
	if *follow != "" {
		roleName = fmt.Sprintf("follower of %s", *follow)
	}
	log.Printf("management server listening on %s (landmarks %v, k=%d, shards=%d, replicas=%d, role=%s)",
		ns.Addr(), lmIDs, *neighbors, *shards, *replicas, roleName)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *ttl > 0 && *follow == "" {
		ticker := time.NewTicker(*sweep)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				if expired := logic.Expire(); len(expired) > 0 {
					log.Printf("expired %d silent peers", len(expired))
				}
			}
		}()
	}
	<-stop
	// Graceful shutdown: stop accepting and drain in-flight connections
	// first, then flush a final snapshot and close the WAL cleanly, so the
	// next start replays an empty log tail.
	log.Print("shutting down: draining connections")
	if err := ns.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	if follower != nil {
		log.Printf("replication at shutdown: applied seq %d, primary head %d, lag %d ops",
			follower.Applied(), follower.Head(), follower.Lag())
		follower.Close()
	}
	if clu != nil && clu.Durable() {
		ds := clu.DurabilityStats()
		log.Printf("durable state: snapshot seq %d, wal tail %d records, fsyncs %d (%.1f records/sync)",
			ds.SnapshotSeq, ds.TailRecords, ds.Log.Fsyncs, avgBatch(ds.Log))
		log.Print("flushing final snapshot and closing WAL")
		if err := clu.Close(); err != nil {
			log.Printf("durable close: %v", err)
		}
	}
	st := logic.Stats()
	fmt.Printf("final stats: peers=%d joins=%d leaves=%d expiries=%d queries=%d\n",
		st.Peers, st.Joins, st.Leaves, st.Expiries, st.Queries)
}

// avgBatch is the average group-commit batch: records per fsync.
func avgBatch(m wal.Metrics) float64 {
	if m.Fsyncs == 0 {
		return 0
	}
	return float64(m.SyncedRecords) / float64(m.Fsyncs)
}

func parseLandmarks(s string) ([]topology.NodeID, error) {
	var out []topology.NodeID
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad landmark %q: %w", part, err)
		}
		out = append(out, topology.NodeID(id))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no landmarks in %q", s)
	}
	return out, nil
}
