package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: proxdisc
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkPipelinedJoin/lockstep-8         	    4000	    584371 ns/op	      1712 joins/s	   3407030 p99-ns
BenchmarkPipelinedJoin/lockstep-8         	    4000	    600000 ns/op	      1650 joins/s	   3500000 p99-ns
BenchmarkPipelinedJoin/lockstep-8         	    4000	    550000 ns/op	      1800 joins/s	   3300000 p99-ns
BenchmarkPipelinedJoin/inflight=64-8      	    4000	     35113 ns/op	     30648 joins/s	  12260304 p99-ns
BenchmarkProtoJoinRoundTrip-8             	 4614918	       260.3 ns/op	     120 B/op	       4 allocs/op
PASS
ok  	proxdisc	2.770s
`

func writeSample(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(path, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchOutput(t *testing.T) {
	sum, err := parseBenchOutput(writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 3 {
		t.Fatalf("benchmarks=%d: %+v", len(sum.Benchmarks), sum.Benchmarks)
	}
	// GOMAXPROCS>1 runs keep the suffix: they are their own series.
	lock := sum.Benchmarks["PipelinedJoin/lockstep-8"]
	if lock == nil || lock.Samples != 3 {
		t.Fatalf("lockstep=%+v", lock)
	}
	if lock.GOMAXPROCS != 8 {
		t.Fatalf("gomaxprocs=%d want 8", lock.GOMAXPROCS)
	}
	if lock.NsPerOp != 584371 {
		t.Fatalf("median ns/op=%v want 584371", lock.NsPerOp)
	}
	if lock.Metrics["joins/s"] != 1712 {
		t.Fatalf("median joins/s=%v", lock.Metrics["joins/s"])
	}
	rt := sum.Benchmarks["ProtoJoinRoundTrip-8"]
	if rt == nil || rt.NsPerOp != 260.3 || rt.Metrics["allocs/op"] != 4 {
		t.Fatalf("round trip=%+v", rt)
	}
}

func TestParseBenchOutputCPUVariantsAreDistinct(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	raw := `goos: linux
BenchmarkMillionPeerNode     	      10	  38698303 ns/op	     52389 joins/s
BenchmarkMillionPeerNode-4   	      10	  15000000 ns/op	    120000 joins/s
PASS
`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	sum, err := parseBenchOutput(path)
	if err != nil {
		t.Fatal(err)
	}
	one := sum.Benchmarks["MillionPeerNode"]
	four := sum.Benchmarks["MillionPeerNode-4"]
	if one == nil || four == nil {
		t.Fatalf("variants not kept distinct: %+v", sum.Benchmarks)
	}
	if one.GOMAXPROCS != 1 || four.GOMAXPROCS != 4 {
		t.Fatalf("gomaxprocs: 1-cpu=%d 4-cpu=%d", one.GOMAXPROCS, four.GOMAXPROCS)
	}
	if one.Metrics["joins/s"] != 52389 || four.Metrics["joins/s"] != 120000 {
		t.Fatalf("metrics crossed series: %+v / %+v", one.Metrics, four.Metrics)
	}
}

func TestMetricRatioGate(t *testing.T) {
	specs, err := parseMetricRatios("MillionPeerNode-4:MillionPeerNode:joins/s:1.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].a != "MillionPeerNode-4" || specs[0].unit != "joins/s" || specs[0].min != 1.5 {
		t.Fatalf("specs=%+v", specs)
	}
	if _, err := parseMetricRatios("A:B:unit"); err == nil {
		t.Fatal("malformed spec accepted")
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	cur := &Summary{Benchmarks: map[string]*Bench{
		"MillionPeerNode":   {NsPerOp: 100, GOMAXPROCS: 1, Metrics: map[string]float64{"joins/s": 100}},
		"MillionPeerNode-4": {NsPerOp: 60, GOMAXPROCS: 4, Metrics: map[string]float64{"joins/s": 170}},
	}}
	if got := checkMetricRatios(devnull, cur, specs); got != 0 {
		t.Fatalf("1.7x vs 1.5x floor: failures=%d want 0", got)
	}
	cur.Benchmarks["MillionPeerNode-4"].Metrics["joins/s"] = 120
	if got := checkMetricRatios(devnull, cur, specs); got != 1 {
		t.Fatalf("1.2x vs 1.5x floor: failures=%d want 1", got)
	}
	// A vanished series must fail its gate, not silently pass.
	delete(cur.Benchmarks, "MillionPeerNode-4")
	if got := checkMetricRatios(devnull, cur, specs); got != 1 {
		t.Fatalf("missing-series failures=%d want 1", got)
	}
}

func TestCompareThreshold(t *testing.T) {
	base := &Summary{Benchmarks: map[string]*Bench{
		"A": {NsPerOp: 100},
		"B": {NsPerOp: 100},
		"C": {NsPerOp: 100},
	}}
	cur := &Summary{Benchmarks: map[string]*Bench{
		"A": {NsPerOp: 115}, // +15% — within a 20% threshold
		"B": {NsPerOp: 130}, // +30% — regression
		"D": {NsPerOp: 50},  // new — never fails
	}}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if got := compare(devnull, base, cur, 20, 0); got != 1 {
		t.Fatalf("regressions=%d want 1", got)
	}
	if got := compare(devnull, base, cur, 5, 0); got != 2 {
		t.Fatalf("regressions=%d want 2", got)
	}
	// Below the -min-ns floor nothing is gated.
	if got := compare(devnull, base, cur, 5, 1000); got != 0 {
		t.Fatalf("regressions=%d want 0 with floor", got)
	}
}

func TestCompareAllocs(t *testing.T) {
	base := &Summary{Benchmarks: map[string]*Bench{
		"Zero":  {NsPerOp: 100, Metrics: map[string]float64{"allocs/op": 0}},
		"Grow":  {NsPerOp: 100, Metrics: map[string]float64{"allocs/op": 10}},
		"Hold":  {NsPerOp: 100, Metrics: map[string]float64{"allocs/op": 10}},
		"NoCur": {NsPerOp: 100, Metrics: map[string]float64{"allocs/op": 5}},
	}}
	cur := &Summary{Benchmarks: map[string]*Bench{
		"Zero":  {NsPerOp: 100, Metrics: map[string]float64{"allocs/op": 1}},  // any alloc on a zero base fails
		"Grow":  {NsPerOp: 100, Metrics: map[string]float64{"allocs/op": 13}}, // +30% — beyond 20%
		"Hold":  {NsPerOp: 100, Metrics: map[string]float64{"allocs/op": 11}}, // +10% — fine
		"NoCur": {NsPerOp: 100},                                               // no allocs reported — ungated
	}}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if got := compareAllocs(devnull, base, cur, 20); got != 2 {
		t.Fatalf("alloc regressions=%d want 2", got)
	}
}

func TestRatioGate(t *testing.T) {
	specs, err := parseRatios("InstrumentedJoin/x:PipelinedJoin/x:5, A:B:50")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].a != "InstrumentedJoin/x" || specs[0].pct != 5 {
		t.Fatalf("specs=%+v", specs)
	}
	if _, err := parseRatios("only-two:fields"); err == nil {
		t.Fatal("malformed spec accepted")
	}
	cur := &Summary{Benchmarks: map[string]*Bench{
		"InstrumentedJoin/x": {NsPerOp: 104},
		"PipelinedJoin/x":    {NsPerOp: 100},
		"A":                  {NsPerOp: 200},
		"B":                  {NsPerOp: 100},
	}}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	// +4% within 5 passes; +100% beyond 50 fails.
	if got := checkRatios(devnull, cur, specs); got != 1 {
		t.Fatalf("ratio failures=%d want 1", got)
	}
	// A spec naming a missing benchmark must fail, not silently pass.
	missing := []ratioSpec{{a: "Gone", b: "B", pct: 5}}
	if got := checkRatios(devnull, cur, missing); got != 1 {
		t.Fatalf("missing-benchmark failures=%d want 1", got)
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	in := &Summary{Benchmarks: map[string]*Bench{
		"X": {NsPerOp: 42.5, Samples: 3, Metrics: map[string]float64{"joins/s": 9}},
	}}
	if err := writeSummary(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Benchmarks["X"].NsPerOp != 42.5 || out.Benchmarks["X"].Metrics["joins/s"] != 9 {
		t.Fatalf("round trip=%+v", out.Benchmarks["X"])
	}
}

func TestReadSummaryToleratesEmptyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := readSummary(path)
	if err != nil || len(s.Benchmarks) != 0 {
		t.Fatalf("s=%+v err=%v", s, err)
	}
}
