// Command proxdisc-benchcmp turns raw `go test -bench` output into a JSON
// summary and fails when a benchmark regresses against a committed
// baseline — the tool behind the benchmark-regression CI job.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -count 3 . | tee bench.txt
//	proxdisc-benchcmp -current bench.txt -baseline BENCH_baseline.json \
//	    -out BENCH_pr.json -threshold 20
//
// Repeated runs of the same benchmark (from -count N) collapse to their
// median, in the spirit of benchstat. A benchmark whose median ns/op
// exceeds the baseline's by more than the threshold percentage fails the
// run; new and vanished benchmarks are reported but never fail. To adopt
// a new baseline, copy the emitted file over BENCH_baseline.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Summary is the JSON document read from the baseline and written to -out.
type Summary struct {
	// Benchmarks maps benchmark name (without the "Benchmark" prefix and
	// the -GOMAXPROCS suffix) to its aggregated result.
	Benchmarks map[string]*Bench `json:"benchmarks"`
}

// Bench is one benchmark's aggregate over repeated runs.
type Bench struct {
	// NsPerOp is the median ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// Samples is the number of runs aggregated.
	Samples int `json:"samples"`
	// Metrics holds the medians of custom metrics (joins/s, D/Dclosest, …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches a standard benchmark result line, e.g.
//
//	BenchmarkPipelinedJoin/lockstep-8   4000   584371 ns/op   1712 joins/s
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

func main() {
	var (
		current   = flag.String("current", "", "raw `go test -bench` output to summarize (required)")
		baseline  = flag.String("baseline", "", "baseline JSON to compare against (skipped when absent or empty)")
		out       = flag.String("out", "", "path to write the current summary JSON")
		threshold = flag.Float64("threshold", 20, "ns/op regression percentage that fails the run")
		soft      = flag.Bool("soft", false, "report regressions but always exit 0 — for cross-machine comparisons where absolute ns/op thresholds are unreliable")
		minNs     = flag.Float64("min-ns", 0, "only gate benchmarks whose baseline median ns/op is at least this (timings below it are single-iteration noise at -benchtime 1x; they are still reported)")
	)
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "proxdisc-benchcmp: -current is required")
		os.Exit(2)
	}
	cur, err := parseBenchOutput(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proxdisc-benchcmp: %v\n", err)
		os.Exit(2)
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "proxdisc-benchcmp: no benchmark results in input")
		os.Exit(2)
	}
	if *out != "" {
		if err := writeSummary(*out, cur); err != nil {
			fmt.Fprintf(os.Stderr, "proxdisc-benchcmp: %v\n", err)
			os.Exit(2)
		}
	}
	if *baseline == "" {
		fmt.Printf("summarized %d benchmarks (no baseline comparison)\n", len(cur.Benchmarks))
		return
	}
	base, err := readSummary(*baseline)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("summarized %d benchmarks (baseline %s absent — nothing to compare)\n",
				len(cur.Benchmarks), *baseline)
			return
		}
		fmt.Fprintf(os.Stderr, "proxdisc-benchcmp: %v\n", err)
		os.Exit(2)
	}
	if len(base.Benchmarks) == 0 {
		fmt.Printf("summarized %d benchmarks (baseline empty — nothing to compare)\n", len(cur.Benchmarks))
		return
	}
	regressions := compare(os.Stdout, base, cur, *threshold, *minNs)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "proxdisc-benchcmp: %d benchmark(s) regressed more than %.0f%%\n",
			regressions, *threshold)
		if !*soft {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "proxdisc-benchcmp: -soft set; not failing")
	}
}

// parseBenchOutput reads raw benchmark text and aggregates repeated runs
// to medians.
func parseBenchOutput(path string) (*Summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	nsRuns := make(map[string][]float64)
	metricRuns := make(map[string]map[string][]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			continue
		}
		nsRuns[name] = append(nsRuns[name], ns)
		for unit, v := range parseMetrics(m[5]) {
			if metricRuns[name] == nil {
				metricRuns[name] = make(map[string][]float64)
			}
			metricRuns[name][unit] = append(metricRuns[name][unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := &Summary{Benchmarks: make(map[string]*Bench, len(nsRuns))}
	for name, runs := range nsRuns {
		b := &Bench{NsPerOp: median(runs), Samples: len(runs)}
		for unit, vals := range metricRuns[name] {
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = median(vals)
		}
		out.Benchmarks[name] = b
	}
	return out, nil
}

// parseMetrics reads the "12345 B/op   1712 joins/s" tail of a benchmark
// line into unit→value pairs (allocation counters included).
func parseMetrics(tail string) map[string]float64 {
	fields := strings.Fields(tail)
	out := make(map[string]float64)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break // mis-aligned tail; stop rather than misattribute
		}
		out[fields[i+1]] = v
	}
	return out
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func readSummary(path string) (*Summary, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(strings.TrimSpace(string(b))) == 0 {
		return &Summary{Benchmarks: map[string]*Bench{}}, nil
	}
	var s Summary
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if s.Benchmarks == nil {
		s.Benchmarks = map[string]*Bench{}
	}
	return &s, nil
}

func writeSummary(path string, s *Summary) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// compare prints a delta table and returns the number of regressions
// beyond the threshold percentage. Benchmarks whose baseline median is
// below minNs are reported but never gated: at -benchtime 1x such
// timings are a single iteration, where scheduler jitter swamps any
// threshold.
func compare(w *os.File, base, cur *Summary, threshold, minNs float64) int {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		c := cur.Benchmarks[name]
		b, ok := base.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "%-60s %12.0f ns/op  (new)\n", name, c.NsPerOp)
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		verdict := "ok"
		switch {
		case b.NsPerOp < minNs:
			verdict = "ungated (below -min-ns)"
		case delta > threshold:
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-60s %12.0f ns/op  base %12.0f  %+7.1f%%  %s\n",
			name, c.NsPerOp, b.NsPerOp, delta, verdict)
	}
	for name := range base.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			fmt.Fprintf(w, "%-60s (vanished from current run)\n", name)
		}
	}
	return regressions
}
