// Command proxdisc-benchcmp turns raw `go test -bench` output into a JSON
// summary and fails when a benchmark regresses against a committed
// baseline — the tool behind the benchmark-regression CI job.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -count 3 . | tee bench.txt
//	proxdisc-benchcmp -current bench.txt -baseline BENCH_baseline.json \
//	    -out BENCH_pr.json -threshold 20
//
// Repeated runs of the same benchmark (from -count N) collapse to their
// median, in the spirit of benchstat. A benchmark whose median ns/op
// exceeds the baseline's by more than the threshold percentage fails the
// run, as does one whose allocs/op grows by more than -alloc-threshold
// (any allocation on a zero-alloc baseline fails outright); new and
// vanished benchmarks are reported but never fail. To adopt a new
// baseline, copy the emitted file over BENCH_baseline.json.
//
// -ratio A:B:pct gates two benchmarks of the SAME run against each other:
// it fails when A's median ns/op exceeds B's by more than pct percent.
// Because both sides ran on the same machine moments apart, the gate
// holds even where absolute thresholds are noise (so it is enforced even
// under -soft) — the tool behind "instrumentation must cost under 5%"
// style CI checks. Several specs may be given, comma-separated.
//
// -metric NAME:unit:pct gates a higher-is-better custom metric (joins/s,
// and friends) against the baseline: the run fails when the current
// median falls more than pct percent below the baseline's, so a
// throughput collapse fails CI even when ns/op — which measures the whole
// iteration, fills and all — stays flat. Throughput is as
// machine-dependent as ns/op, so the floor honors -soft.
//
// -metric-ratio A:B:unit:min gates a custom metric of two benchmarks of
// the SAME run against each other: it fails when A's median value is less
// than min times B's. Like -ratio, both sides ran on the same machine
// moments apart, so the gate is enforced even under -soft — the tool
// behind "the 4-CPU variant must sustain ≥1.5× the 1-CPU joins/s" style
// scaling checks.
//
// GOMAXPROCS handling: `go test` suffixes benchmark names with the
// GOMAXPROCS used when it is not 1 ("BenchmarkFoo-8"). Multi-core
// variants are kept as distinct series under their suffixed name
// ("Foo-8"), each recording its gomaxprocs in the summary, so -cpu 1,4
// runs gate the 4-CPU numbers independently instead of comparing them
// against 1-CPU baselines. Unsuffixed names always mean GOMAXPROCS=1;
// pin baseline-producing runs with -cpu 1 to keep those keys stable.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Summary is the JSON document read from the baseline and written to -out.
type Summary struct {
	// Benchmarks maps benchmark name (without the "Benchmark" prefix;
	// multi-core variants keep their -GOMAXPROCS suffix as part of the
	// name, so "Foo" and "Foo-4" are independent series) to its
	// aggregated result.
	Benchmarks map[string]*Bench `json:"benchmarks"`
}

// Bench is one benchmark's aggregate over repeated runs.
type Bench struct {
	// NsPerOp is the median ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// Samples is the number of runs aggregated.
	Samples int `json:"samples"`
	// GOMAXPROCS is the processor count the series ran at (1 when the
	// benchmark name carried no suffix; omitted in JSON for legacy
	// summaries).
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// Metrics holds the medians of custom metrics (joins/s, D/Dclosest, …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches a standard benchmark result line, e.g.
//
//	BenchmarkPipelinedJoin/lockstep-8   4000   584371 ns/op   1712 joins/s
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

func main() {
	var (
		current   = flag.String("current", "", "raw `go test -bench` output to summarize (required)")
		baseline  = flag.String("baseline", "", "baseline JSON to compare against (skipped when absent or empty)")
		out       = flag.String("out", "", "path to write the current summary JSON")
		threshold = flag.Float64("threshold", 20, "ns/op regression percentage that fails the run")
		soft      = flag.Bool("soft", false, "report ns/op regressions but do not fail on them — for cross-machine comparisons where absolute timings are unreliable (-ratio and allocs/op gates still fail)")
		minNs     = flag.Float64("min-ns", 0, "only gate benchmarks whose baseline median ns/op is at least this (timings below it are single-iteration noise at -benchtime 1x; they are still reported)")
		allocPct  = flag.Float64("alloc-threshold", 20, "allocs/op regression percentage that fails the run (a zero-alloc baseline fails on ANY allocation)")
		ratios    = flag.String("ratio", "", "comma-separated A:B:pct specs gating benchmark A's ns/op within pct percent of B's, both from the current run")
		metrics   = flag.String("metric", "", "comma-separated NAME:unit:pct floor specs gating a higher-is-better custom metric against the baseline (e.g. 'BatchJoin/batch=32:joins/s:25'): fails when the current median falls more than pct percent below the baseline's (honors -soft, like ns/op)")
		metRatios = flag.String("metric-ratio", "", "comma-separated A:B:unit:min specs gating a custom metric of two benchmarks within the current run (e.g. 'MillionPeerNode-4:MillionPeerNode:joins/s:1.5'): fails when A's median is below min times B's (within-run, so enforced even under -soft)")
	)
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "proxdisc-benchcmp: -current is required")
		os.Exit(2)
	}
	cur, err := parseBenchOutput(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proxdisc-benchcmp: %v\n", err)
		os.Exit(2)
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "proxdisc-benchcmp: no benchmark results in input")
		os.Exit(2)
	}
	if *out != "" {
		if err := writeSummary(*out, cur); err != nil {
			fmt.Fprintf(os.Stderr, "proxdisc-benchcmp: %v\n", err)
			os.Exit(2)
		}
	}
	ratioFailures := 0
	if *ratios != "" {
		specs, err := parseRatios(*ratios)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxdisc-benchcmp: %v\n", err)
			os.Exit(2)
		}
		ratioFailures = checkRatios(os.Stdout, cur, specs)
	}
	if *metRatios != "" {
		specs, err := parseMetricRatios(*metRatios)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxdisc-benchcmp: %v\n", err)
			os.Exit(2)
		}
		ratioFailures += checkMetricRatios(os.Stdout, cur, specs)
	}
	defer func() {
		// Within-run ratios are machine-independent: they fail even -soft runs.
		if ratioFailures > 0 {
			fmt.Fprintf(os.Stderr, "proxdisc-benchcmp: %d ratio gate(s) failed\n", ratioFailures)
			os.Exit(1)
		}
	}()
	if *baseline == "" {
		fmt.Printf("summarized %d benchmarks (no baseline comparison)\n", len(cur.Benchmarks))
		return
	}
	base, err := readSummary(*baseline)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("summarized %d benchmarks (baseline %s absent — nothing to compare)\n",
				len(cur.Benchmarks), *baseline)
			return
		}
		fmt.Fprintf(os.Stderr, "proxdisc-benchcmp: %v\n", err)
		os.Exit(2)
	}
	if len(base.Benchmarks) == 0 {
		fmt.Printf("summarized %d benchmarks (baseline empty — nothing to compare)\n", len(cur.Benchmarks))
		return
	}
	regressions := compare(os.Stdout, base, cur, *threshold, *minNs)
	// Allocation counts are deterministic across machines, so their
	// regressions fail even -soft runs (like -ratio gates, unlike ns/op).
	allocRegressions := compareAllocs(os.Stdout, base, cur, *allocPct)
	metricRegressions := 0
	if *metrics != "" {
		specs, err := parseMetricSpecs(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxdisc-benchcmp: %v\n", err)
			os.Exit(2)
		}
		metricRegressions = checkMetricFloors(os.Stdout, base, cur, specs)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "proxdisc-benchcmp: %d benchmark(s) regressed more than %.0f%% ns/op\n",
			regressions, *threshold)
		if !*soft {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "proxdisc-benchcmp: -soft set; not failing on ns/op")
	}
	if metricRegressions > 0 {
		// Throughput metrics are as machine-dependent as ns/op, so the
		// floor gate honors -soft the same way.
		fmt.Fprintf(os.Stderr, "proxdisc-benchcmp: %d metric floor gate(s) failed\n", metricRegressions)
		if !*soft {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "proxdisc-benchcmp: -soft set; not failing on metric floors")
	}
	if allocRegressions > 0 {
		fmt.Fprintf(os.Stderr, "proxdisc-benchcmp: %d benchmark(s) regressed allocs/op\n", allocRegressions)
		os.Exit(1)
	}
}

// ratioSpec gates benchmark A within pct percent of benchmark B, both from
// the current run.
type ratioSpec struct {
	a, b string
	pct  float64
}

// parseRatios reads comma-separated "A:B:pct" specs (benchmark names
// without the "Benchmark" prefix; sub-benchmark slashes are fine).
func parseRatios(s string) ([]ratioSpec, error) {
	var out []ratioSpec
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad -ratio spec %q (want A:B:pct)", part)
		}
		pct, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad -ratio percentage in %q: %w", part, err)
		}
		out = append(out, ratioSpec{a: fields[0], b: fields[1], pct: pct})
	}
	return out, nil
}

// checkRatios evaluates within-run ratio gates against the current summary
// and returns how many failed. A spec naming an absent benchmark fails —
// a vanished benchmark must not silently pass its gate.
func checkRatios(w *os.File, cur *Summary, specs []ratioSpec) int {
	failures := 0
	for _, spec := range specs {
		a, okA := cur.Benchmarks[spec.a]
		b, okB := cur.Benchmarks[spec.b]
		if !okA || !okB {
			fmt.Fprintf(w, "ratio %s vs %s: benchmark missing from current run\n", spec.a, spec.b)
			failures++
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (a.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		verdict := "ok"
		if delta > spec.pct {
			verdict = "RATIO EXCEEDED"
			failures++
		}
		fmt.Fprintf(w, "ratio %s (%.0f ns/op) vs %s (%.0f ns/op): %+.1f%% (limit +%.1f%%)  %s\n",
			spec.a, a.NsPerOp, spec.b, b.NsPerOp, delta, spec.pct, verdict)
	}
	return failures
}

// metricRatioSpec gates a custom metric of benchmark A against min times
// benchmark B's, both from the current run — the scaling gate ("the 4-CPU
// variant must sustain ≥1.5× the 1-CPU throughput").
type metricRatioSpec struct {
	a, b, unit string
	min        float64
}

// parseMetricRatios reads comma-separated "A:B:unit:min" specs (benchmark
// names without the "Benchmark" prefix; none of the fields may contain a
// colon).
func parseMetricRatios(s string) ([]metricRatioSpec, error) {
	var out []metricRatioSpec
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("bad -metric-ratio spec %q (want A:B:unit:min)", part)
		}
		min, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad -metric-ratio minimum in %q: %w", part, err)
		}
		out = append(out, metricRatioSpec{a: fields[0], b: fields[1], unit: fields[2], min: min})
	}
	return out, nil
}

// checkMetricRatios evaluates within-run metric ratio gates and returns
// how many failed. A spec naming an absent benchmark or metric fails — a
// vanished series must not silently pass its scaling gate.
func checkMetricRatios(w *os.File, cur *Summary, specs []metricRatioSpec) int {
	failures := 0
	for _, spec := range specs {
		var av, bv float64
		okA, okB := false, false
		if b, ok := cur.Benchmarks[spec.a]; ok {
			av, okA = b.Metrics[spec.unit]
		}
		if b, ok := cur.Benchmarks[spec.b]; ok {
			bv, okB = b.Metrics[spec.unit]
		}
		if !okA || !okB || bv <= 0 {
			fmt.Fprintf(w, "metric-ratio %s vs %s (%s): benchmark or metric missing from current run\n",
				spec.a, spec.b, spec.unit)
			failures++
			continue
		}
		ratio := av / bv
		verdict := "ok"
		if ratio < spec.min {
			verdict = "RATIO FLOOR BROKEN"
			failures++
		}
		fmt.Fprintf(w, "metric-ratio %s (%.1f %s) vs %s (%.1f %s): %.2fx (floor %.2fx)  %s\n",
			spec.a, av, spec.unit, spec.b, bv, spec.unit, ratio, spec.min, verdict)
	}
	return failures
}

// metricSpec gates a higher-is-better custom metric of one benchmark: the
// current median must not fall more than pct percent below the baseline's.
type metricSpec struct {
	name, unit string
	pct        float64
}

// parseMetricSpecs reads comma-separated "NAME:unit:pct" specs (benchmark
// names without the "Benchmark" prefix; slashes in names and units are
// fine — neither may contain a colon).
func parseMetricSpecs(s string) ([]metricSpec, error) {
	var out []metricSpec
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad -metric spec %q (want NAME:unit:pct)", part)
		}
		pct, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad -metric percentage in %q: %w", part, err)
		}
		out = append(out, metricSpec{name: fields[0], unit: fields[1], pct: pct})
	}
	return out, nil
}

// checkMetricFloors gates custom metrics against the baseline and returns
// how many floors were broken. A spec whose benchmark or metric vanished
// from the current run fails (it must not silently pass its gate); a
// metric the baseline has never recorded is reported and skipped, so a
// newly added benchmark does not fail until a baseline adopts it.
func checkMetricFloors(w *os.File, base, cur *Summary, specs []metricSpec) int {
	failures := 0
	for _, spec := range specs {
		c, okC := cur.Benchmarks[spec.name]
		var cv float64
		if okC {
			cv, okC = c.Metrics[spec.unit]
		}
		if !okC {
			fmt.Fprintf(w, "metric %s %s: missing from current run\n", spec.name, spec.unit)
			failures++
			continue
		}
		b, okB := base.Benchmarks[spec.name]
		var bv float64
		if okB {
			bv, okB = b.Metrics[spec.unit]
		}
		if !okB || bv <= 0 {
			fmt.Fprintf(w, "metric %s %s: %.1f (no baseline — not gated)\n", spec.name, spec.unit, cv)
			continue
		}
		drop := (bv - cv) / bv * 100
		verdict := "ok"
		if drop > spec.pct {
			verdict = "FLOOR BROKEN"
			failures++
		}
		fmt.Fprintf(w, "metric %s %s: %.1f  base %.1f  %+.1f%% (floor -%.1f%%)  %s\n",
			spec.name, spec.unit, cv, bv, -drop, spec.pct, verdict)
	}
	return failures
}

// parseBenchOutput reads raw benchmark text and aggregates repeated runs
// to medians.
func parseBenchOutput(path string) (*Summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	nsRuns := make(map[string][]float64)
	metricRuns := make(map[string]map[string][]float64)
	procsOf := make(map[string]int)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		procs := 1
		if m[2] != "" {
			if n, err := strconv.Atoi(m[2][1:]); err == nil && n > 1 {
				// Multi-core variants are their own series: keep the
				// -GOMAXPROCS suffix in the key so "Foo-4" never gates
				// against a 1-CPU "Foo" baseline.
				procs = n
				name += m[2]
			}
		}
		procsOf[name] = procs
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			continue
		}
		nsRuns[name] = append(nsRuns[name], ns)
		for unit, v := range parseMetrics(m[5]) {
			if metricRuns[name] == nil {
				metricRuns[name] = make(map[string][]float64)
			}
			metricRuns[name][unit] = append(metricRuns[name][unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := &Summary{Benchmarks: make(map[string]*Bench, len(nsRuns))}
	for name, runs := range nsRuns {
		b := &Bench{NsPerOp: median(runs), Samples: len(runs), GOMAXPROCS: procsOf[name]}
		for unit, vals := range metricRuns[name] {
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = median(vals)
		}
		out.Benchmarks[name] = b
	}
	return out, nil
}

// parseMetrics reads the "12345 B/op   1712 joins/s" tail of a benchmark
// line into unit→value pairs (allocation counters included).
func parseMetrics(tail string) map[string]float64 {
	fields := strings.Fields(tail)
	out := make(map[string]float64)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break // mis-aligned tail; stop rather than misattribute
		}
		out[fields[i+1]] = v
	}
	return out
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func readSummary(path string) (*Summary, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(strings.TrimSpace(string(b))) == 0 {
		return &Summary{Benchmarks: map[string]*Bench{}}, nil
	}
	var s Summary
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if s.Benchmarks == nil {
		s.Benchmarks = map[string]*Bench{}
	}
	return &s, nil
}

func writeSummary(path string, s *Summary) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// compare prints a delta table and returns the number of regressions
// beyond the threshold percentage. Benchmarks whose baseline median is
// below minNs are reported but never gated: at -benchtime 1x such
// timings are a single iteration, where scheduler jitter swamps any
// threshold.
func compare(w *os.File, base, cur *Summary, threshold, minNs float64) int {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		c := cur.Benchmarks[name]
		b, ok := base.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "%-60s %12.0f ns/op  (new)\n", name, c.NsPerOp)
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		verdict := "ok"
		switch {
		case b.NsPerOp < minNs:
			verdict = "ungated (below -min-ns)"
		case delta > threshold:
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-60s %12.0f ns/op  base %12.0f  %+7.1f%%  %s\n",
			name, c.NsPerOp, b.NsPerOp, delta, verdict)
	}
	for name := range base.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			fmt.Fprintf(w, "%-60s (vanished from current run)\n", name)
		}
	}
	return regressions
}

// compareAllocs gates allocs/op for every benchmark both sides report it
// for, and returns the number of regressions. Allocation counts are
// deterministic where ns/op is noisy, so a zero-alloc baseline admits NO
// current allocations at all; a non-zero baseline tolerates growth up to
// the threshold percentage.
func compareAllocs(w *os.File, base, cur *Summary, threshold float64) int {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		c := cur.Benchmarks[name]
		b := base.Benchmarks[name]
		if b == nil {
			continue
		}
		ca, okC := c.Metrics["allocs/op"]
		ba, okB := b.Metrics["allocs/op"]
		if !okC || !okB {
			continue
		}
		verdict := "ok"
		switch {
		case ba == 0 && ca > 0:
			verdict = "ALLOC REGRESSION (was zero-alloc)"
			regressions++
		case ba > 0 && (ca-ba)/ba*100 > threshold:
			verdict = "ALLOC REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-60s %12.1f allocs/op  base %12.1f  %s\n", name, ca, ba, verdict)
	}
	return regressions
}
