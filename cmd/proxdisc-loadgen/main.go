// Command proxdisc-loadgen measures join throughput against a running
// proxdisc management server — the tool behind the pipelining benchmarks
// and the benchmark-regression CI job.
//
// Usage:
//
//	proxdisc-server -landmarks 0,100 &
//	proxdisc-loadgen -addr 127.0.0.1:7470 -landmarks 0,100 -joins 50000 \
//	    -clients 4 -inflight 16 -batch 8
//
// Peers report synthetic routing-tree paths ending at the given landmarks
// (round-robin). -inflight 1 -lockstep reproduces the version-1 protocol's
// one-outstanding-request pacing, so comparing runs quantifies the
// pipelining speedup on real hardware.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"proxdisc/internal/loadgen"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7470", "management server TCP address")
		landmarks = flag.String("landmarks", "0", "comma-separated landmark router IDs peers report paths to")
		joins     = flag.Int("joins", 10_000, "total joins to issue")
		clients   = flag.Int("clients", 1, "TCP connections")
		inflight  = flag.Int("inflight", 1, "outstanding requests per connection")
		batch     = flag.Int("batch", 1, "joins per request frame")
		peerBase  = flag.Int64("peer-base", 1, "first peer ID (space runs apart on a shared server)")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		lockstep  = flag.Bool("lockstep", false, "force the version-1 lock-step protocol")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON")
	)
	flag.Parse()

	lms, err := parseLandmarks(*landmarks)
	if err != nil {
		log.Fatalf("proxdisc-loadgen: %v", err)
	}
	res, err := loadgen.Run(loadgen.Config{
		Addr:              *addr,
		Clients:           *clients,
		InFlight:          *inflight,
		Batch:             *batch,
		Joins:             *joins,
		PeerBase:          *peerBase,
		Timeout:           *timeout,
		DisablePipelining: *lockstep,
		PathFor: func(peer int64) []int32 {
			lm := lms[int(peer)%len(lms)]
			return loadgen.TreePath(lm, int(peer))
		},
	})
	if err != nil {
		log.Fatalf("proxdisc-loadgen: %v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatalf("proxdisc-loadgen: %v", err)
		}
		return
	}
	fmt.Println(res)
}

func parseLandmarks(s string) ([]int32, error) {
	var out []int32
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad landmark %q: %w", part, err)
		}
		out = append(out, int32(id))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no landmarks in %q", s)
	}
	return out, nil
}
