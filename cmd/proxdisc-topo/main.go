// Command proxdisc-topo generates and inspects the synthetic router-level
// Internet maps the simulator runs on, and verifies the statistical
// properties the paper's argument needs (heavy tail, central core, degree-1
// fringe).
//
// Usage:
//
//	proxdisc-topo -model barabasi-albert -core 2000 -leaves 2000 -seed 1
//	proxdisc-topo -model waxman -histogram
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"

	"proxdisc/internal/metrics"
	"proxdisc/internal/topology"
)

func main() {
	var (
		model     = flag.String("model", "barabasi-albert", "topology model: barabasi-albert|glp|waxman|transit-stub")
		core      = flag.Int("core", 2000, "core routers")
		leaves    = flag.Int("leaves", 2000, "degree-1 edge routers")
		edges     = flag.Int("edges-per-node", 2, "preferential-attachment edges per node")
		seed      = flag.Int64("seed", 1, "generator seed")
		histogram = flag.Bool("histogram", false, "print the full degree histogram")
		bcSamples = flag.Int("centrality-samples", 50, "sources for betweenness estimation (0 = skip)")
		outFile   = flag.String("o", "", "save the generated map to this file")
		inFile    = flag.String("in", "", "load a map from this file instead of generating")
	)
	flag.Parse()

	var g *topology.Graph
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			log.Fatalf("proxdisc-topo: %v", err)
		}
		g, err = topology.ReadGraph(f)
		f.Close()
		if err != nil {
			log.Fatalf("proxdisc-topo: load %s: %v", *inFile, err)
		}
	} else {
		m, err := topology.ParseModel(*model)
		if err != nil {
			log.Fatalf("proxdisc-topo: %v", err)
		}
		g, err = topology.Generate(topology.Config{
			Model:        m,
			CoreRouters:  *core,
			LeafRouters:  *leaves,
			EdgesPerNode: *edges,
			Seed:         *seed,
		})
		if err != nil {
			log.Fatalf("proxdisc-topo: %v", err)
		}
	}
	if err := g.Validate(); err != nil {
		log.Fatalf("proxdisc-topo: graph invalid: %v", err)
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			log.Fatalf("proxdisc-topo: %v", err)
		}
		if err := topology.WriteGraph(f, g); err != nil {
			log.Fatalf("proxdisc-topo: save %s: %v", *outFile, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("proxdisc-topo: close %s: %v", *outFile, err)
		}
		fmt.Printf("saved map to %s\n", *outFile)
	}

	source := fmt.Sprintf("%s (seed %d)", *model, *seed)
	if *inFile != "" {
		source = "loaded from " + *inFile
	}
	t := &metrics.Table{Title: "topology " + source,
		Columns: []string{"property", "value"}}
	t.AddRow("routers", g.NumNodes())
	t.AddRow("links", g.NumEdges())
	t.AddRow("connected", g.IsConnected())
	t.AddRow("avg degree", topology.AverageDegree(g))
	t.AddRow("max degree", topology.MaxDegree(g))
	t.AddRow("degree-1 routers", len(topology.LeafRouters(g)))
	t.AddRow("medium-band routers", len(topology.NodesInBand(g, topology.BandMedium)))
	t.AddRow("core-band routers", len(topology.NodesInBand(g, topology.BandCore)))
	if alpha, n := topology.PowerLawFit(g, 3); n > 0 {
		t.AddRow("power-law alpha (d>=3)", alpha)
		t.AddRow("power-law samples", n)
	}
	coreness := topology.KCore(g)
	maxCore := 0
	for _, c := range coreness {
		if c > maxCore {
			maxCore = c
		}
	}
	t.AddRow("max k-core", maxCore)
	if *bcSamples > 0 {
		rng := rand.New(rand.NewSource(*seed + 99))
		bc := topology.BetweennessSample(g, *bcSamples, rng)
		coreSum, leafSum := 0.0, 0.0
		coreN, leafN := 0, 0
		coreSet := map[topology.NodeID]bool{}
		for _, u := range topology.NodesInBand(g, topology.BandCore) {
			coreSet[u] = true
		}
		for u := 0; u < g.NumNodes(); u++ {
			switch {
			case coreSet[topology.NodeID(u)]:
				coreSum += bc[u]
				coreN++
			case g.Degree(topology.NodeID(u)) == 1:
				leafSum += bc[u]
				leafN++
			}
		}
		if coreN > 0 && leafN > 0 && leafSum > 0 {
			t.AddRow("centrality core/leaf ratio", (coreSum/float64(coreN))/(leafSum/float64(leafN)))
		}
	}
	fmt.Println(t.Format())

	if *histogram {
		h := topology.DegreeHistogram(g)
		degs := make([]int, 0, len(h))
		for d := range h {
			degs = append(degs, d)
		}
		sort.Ints(degs)
		ht := &metrics.Table{Title: "degree histogram", Columns: []string{"degree", "routers"}}
		for _, d := range degs {
			ht.AddRow(d, h[d])
		}
		fmt.Println(ht.Format())
	}
}
