// Benchmarks regenerating every figure of the paper plus the ablation
// studies (see DESIGN.md §3 for the experiment index). Each experiment
// bench reports the figure's headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both measures the implementation and reprints the reproduced results.
package proxdisc

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"proxdisc/internal/client"
	"proxdisc/internal/cluster"
	"proxdisc/internal/experiment"
	"proxdisc/internal/loadgen"
	"proxdisc/internal/netserver"
	"proxdisc/internal/op"
	"proxdisc/internal/pathtree"
	"proxdisc/internal/proto"
	"proxdisc/internal/server"
	"proxdisc/internal/sub"
	"proxdisc/internal/telemetry"
	"proxdisc/internal/topology"
	"proxdisc/internal/traceroute"
	"proxdisc/internal/wal"
)

// benchWorld is the standard world for experiment benches: the paper-scale
// map kept at a size where one full pipeline run stays under a second.
func benchWorld(seed int64) experiment.WorldConfig {
	return experiment.WorldConfig{
		Topology: topology.Config{
			Model:        topology.ModelBarabasiAlbert,
			CoreRouters:  2000,
			LeafRouters:  2000,
			EdgesPerNode: 2,
			Seed:         seed,
		},
		NumLandmarks: 8,
		Seed:         seed,
	}
}

// BenchmarkFig1PeerSweep regenerates the paper's figure (E1): one
// sub-benchmark per x-position, reporting both curves as metrics.
func BenchmarkFig1PeerSweep(b *testing.B) {
	for _, n := range []int{600, 800, 1000, 1200, 1400} {
		b.Run(fmt.Sprintf("peers=%d", n), func(b *testing.B) {
			var last experiment.Fig1Point
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunFig1(experiment.Fig1Config{
					PeerCounts:  []int{n},
					SamplePeers: 150,
					World:       benchWorld(1),
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Points[0]
			}
			b.ReportMetric(last.DOverDclosest, "D/Dclosest")
			b.ReportMetric(last.DrandomOverDclosest, "Drandom/Dclosest")
		})
	}
}

// BenchmarkAblationLandmarkCount is E2.
func BenchmarkAblationLandmarkCount(b *testing.B) {
	for _, c := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("landmarks=%d", c), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunLandmarkCountSweep(benchWorld(2), []int{c}, 800, 120)
				if err != nil {
					b.Fatal(err)
				}
				ratio = res.Points[0].DOverDclosest
			}
			b.ReportMetric(ratio, "D/Dclosest")
		})
	}
}

// BenchmarkAblationPlacement is E3.
func BenchmarkAblationPlacement(b *testing.B) {
	for _, band := range []topology.DegreeBand{topology.BandLeaf, topology.BandMedium, topology.BandCore} {
		b.Run("band="+band.String(), func(b *testing.B) {
			cfg := benchWorld(3)
			cfg.LandmarkBand = band
			var ratio float64
			for i := 0; i < b.N; i++ {
				w, err := experiment.BuildWorld(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := w.JoinN(800); err != nil {
					b.Fatal(err)
				}
				q, err := w.EvaluateQuality(120)
				if err != nil {
					b.Fatal(err)
				}
				ratio = q.DOverDclosest()
			}
			b.ReportMetric(ratio, "D/Dclosest")
		})
	}
}

// BenchmarkQuicknessVsCoordinates is E4, the headline comparison.
func BenchmarkQuicknessVsCoordinates(b *testing.B) {
	var res *experiment.QuicknessResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunQuickness(experiment.QuicknessConfig{
			Peers:         300,
			World:         benchWorld(4),
			VivaldiRounds: []int{5, 20},
			SamplePeers:   100,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range res.Points {
		b.Logf("%-28s probes/peer=%8.2f  D/Dclosest=%.4f", p.System, p.ProbesPerPeer, p.DOverDclosest)
	}
	b.ReportMetric(res.Points[0].DOverDclosest, "pathtree-D/Dclosest")
	b.ReportMetric(res.Points[0].ProbesPerPeer, "pathtree-probes/peer")
}

// BenchmarkAblationTopology is E5: one sub-benchmark per topology model,
// each running the full pipeline on that model.
func BenchmarkAblationTopology(b *testing.B) {
	for _, m := range []topology.Model{topology.ModelBarabasiAlbert, topology.ModelWaxman, topology.ModelTransitStub} {
		b.Run("model="+m.String(), func(b *testing.B) {
			cfg := benchWorld(5)
			cfg.Topology.Model = m
			var ratio float64
			for i := 0; i < b.N; i++ {
				w, err := experiment.BuildWorld(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := w.JoinN(600); err != nil {
					b.Fatal(err)
				}
				q, err := w.EvaluateQuality(100)
				if err != nil {
					b.Fatal(err)
				}
				ratio = q.DOverDclosest()
			}
			b.ReportMetric(ratio, "D/Dclosest")
		})
	}
}

// BenchmarkChurn is E6.
func BenchmarkChurn(b *testing.B) {
	var res *experiment.ChurnResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunChurn(experiment.ChurnConfig{
			World:       benchWorld(6),
			Arrivals:    600,
			SamplePeers: 100,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Points[0].StaleAnswerFraction, "stale-frac-nocleanup")
	b.ReportMetric(res.Points[1].StaleAnswerFraction, "stale-frac-cleanup")
}

// BenchmarkSuperPeers is E7.
func BenchmarkSuperPeers(b *testing.B) {
	var res *experiment.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunSuperPeerSweep(benchWorld(7), []float64{0.05}, 600, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Points[0].DOverDclosest, "D/Dclosest")
}

// BenchmarkTruncatedTraceroute is E8.
func BenchmarkTruncatedTraceroute(b *testing.B) {
	variants := []struct {
		name  string
		trace traceroute.Config
	}{
		// key=value names: a trailing -N would be ambiguous with the
		// GOMAXPROCS suffix go test appends on multi-core machines.
		{"full", traceroute.Config{}},
		{"keep-every=2", traceroute.Config{KeepEvery: 2}},
		{"prefix=4", traceroute.Config{PrefixHops: 4}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := benchWorld(8)
			cfg.Trace = v.trace
			var ratio float64
			for i := 0; i < b.N; i++ {
				w, err := experiment.BuildWorld(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := w.JoinN(800); err != nil {
					b.Fatal(err)
				}
				q, err := w.EvaluateQuality(120)
				if err != nil {
					b.Fatal(err)
				}
				ratio = q.DOverDclosest()
			}
			b.ReportMetric(ratio, "D/Dclosest")
		})
	}
}

// BenchmarkStreamingSetup is E9.
func BenchmarkStreamingSetup(b *testing.B) {
	var res *experiment.StreamingResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunStreaming(experiment.StreamingConfig{
			World: benchWorld(9),
			Peers: 300,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range res.Points {
		b.Logf("%-10s link-hops=%.2f delivery=%.1fms setup-p95=%.0fms",
			p.Label, p.MeanLinkHops, p.MeanDeliveryMS, p.P95SetupMS)
	}
	b.ReportMetric(res.Points[0].MeanLinkHops, "proximity-link-hops")
	b.ReportMetric(res.Points[1].MeanLinkHops, "random-link-hops")
}

// BenchmarkHandover is E11: the measurement cost and quality recovery of
// peer mobility.
func BenchmarkHandover(b *testing.B) {
	var res *experiment.HandoverResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunHandover(benchWorld(11), 600, 0.2, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ProbesPerHandover, "probes/handover")
	b.ReportMetric(res.QualityAfter, "D/Dclosest-after")
}

// --- E10: data-structure complexity checks ---

// buildTreePaths pre-generates realistic peer→landmark paths: paths of a
// destination-rooted routing tree, exactly what the management server
// receives in deployment. A synthetic bounded-branching hierarchy stands in
// for the routing tree (each router's next hop toward landmark 0 is
// deterministic), with peers hanging off random edge routers.
func buildTreePaths(n int, seed int64) [][]topology.NodeID {
	rng := rand.New(rand.NewSource(seed))
	const (
		fanout      = 8       // children per router in the routing tree
		edgeRouters = 200_000 // router ID space at the edge
	)
	paths := make([][]topology.NodeID, n)
	for i := range paths {
		// Pick a random edge router and climb toward the root: the parent
		// of router r is (r-1)/fanout, giving depth ~log_8(id) ≈ 6.
		r := topology.NodeID(1 + rng.Intn(edgeRouters))
		var path []topology.NodeID
		for r > 0 {
			path = append(path, r)
			r = (r - 1) / fanout
		}
		paths[i] = append(path, 0)
	}
	return paths
}

// BenchmarkPathTreeInsert measures insertion cost versus population (the
// paper claims O(log n)-like growth; being trie-based it is O(path length),
// independent of n).
func BenchmarkPathTreeInsert(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("prepop=%d", n), func(b *testing.B) {
			pre := buildTreePaths(n, 1)
			extra := buildTreePaths(10_000, 2)
			tree := pathtree.New(0, pathtree.Options{})
			for i, p := range pre {
				if err := tree.Insert(pathtree.PeerID(i+1), p); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := extra[i%len(extra)]
				id := pathtree.PeerID(n + 1 + i)
				if err := tree.Insert(id, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPathTreeQuery measures closest-peer query cost versus population
// (the paper claims O(1); ours is O(k·path length), independent of n).
func BenchmarkPathTreeQuery(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("peers=%d", n), func(b *testing.B) {
			paths := buildTreePaths(n, 3)
			tree := pathtree.New(0, pathtree.Options{})
			for i, p := range paths {
				if err := tree.Insert(pathtree.PeerID(i+1), p); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := pathtree.PeerID(i%n + 1)
				if _, err := tree.Closest(id, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPathTreeDTree measures the pairwise distance primitive.
func BenchmarkPathTreeDTree(b *testing.B) {
	paths := buildTreePaths(10_000, 4)
	tree := pathtree.New(0, pathtree.Options{})
	for i, p := range paths {
		if err := tree.Insert(pathtree.PeerID(i+1), p); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pathtree.PeerID(i%10_000 + 1)
		q := pathtree.PeerID((i*7)%10_000 + 1)
		if _, err := tree.DTree(p, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathTreeChurn measures the steady-state insert/remove cycle on
// a prefilled tree — the shape a long-lived landmark tree sees once its
// population stabilizes. The warmup pass before the timer sets the arena
// high-water mark and grows every map and slice to capacity, so the
// measured loop runs entirely on recycled nodes: the committed baseline
// pins it at 0 allocs/op, which is the gate on the slab allocator (a
// regression to per-insert heap nodes fails CI deterministically).
func BenchmarkPathTreeChurn(b *testing.B) {
	const resident = 10_000
	pre := buildTreePaths(resident, 1)
	tree := pathtree.New(0, pathtree.Options{})
	for i, p := range pre {
		if err := tree.Insert(pathtree.PeerID(i+1), p); err != nil {
			b.Fatal(err)
		}
	}
	churn := buildTreePaths(256, 2)
	const churnID = pathtree.PeerID(resident + 1)
	// Warmup: one full cycle over every churn path recycles each path's
	// nodes through the arena once, so the measured loop re-carves nothing.
	for _, p := range churn {
		if err := tree.Insert(churnID, p); err != nil {
			b.Fatal(err)
		}
		tree.Remove(churnID)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := churn[i%len(churn)]
		if err := tree.Insert(churnID, p); err != nil {
			b.Fatal(err)
		}
		tree.Remove(churnID)
	}
	b.StopTimer()
	st := tree.ArenaStats()
	b.ReportMetric(float64(st.Allocated), "arena-nodes")
}

// --- cluster benchmarks: the sharding speedup trajectory ---

// benchClusterLandmarks is a 16-landmark set so the same workload runs at
// 1, 4, and 16 shards.
var benchClusterLandmarks = func() []topology.NodeID {
	lms := make([]topology.NodeID, 16)
	for i := range lms {
		lms[i] = topology.NodeID(i * 100)
	}
	return lms
}()

// buildClusterPath generates a routing-tree path to one landmark, in a
// per-landmark router ID block (cf. buildTreePaths).
func buildClusterPath(lm topology.NodeID, leaf int) []topology.NodeID {
	base := topology.NodeID(1_000_000 * (int(lm) + 1))
	r := base + topology.NodeID(1+leaf%200_000)
	var path []topology.NodeID
	for r > base {
		path = append(path, r)
		r = base + (r-base-1)/8
	}
	return append(path, lm)
}

// benchCluster builds a cluster pre-populated with peers spread over all
// landmarks.
func benchCluster(b *testing.B, shards, prepop int) *cluster.Cluster {
	b.Helper()
	c, err := cluster.New(cluster.Config{Landmarks: benchClusterLandmarks, Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(shards)))
	for i := 0; i < prepop; i++ {
		lm := benchClusterLandmarks[i%len(benchClusterLandmarks)]
		if _, err := c.Join(pathtree.PeerID(i+1), buildClusterPath(lm, rng.Intn(200_000))); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkClusterJoin measures concurrent join throughput at 1, 4, and 16
// shards: every join locks only its landmark's shard, so throughput should
// scale with the shard count until the router is the bottleneck.
func BenchmarkClusterJoin(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := benchCluster(b, shards, 10_000)
			var next atomic.Int64
			next.Store(1_000_000)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(next.Add(1)))
				for pb.Next() {
					id := pathtree.PeerID(next.Add(1))
					lm := benchClusterLandmarks[rng.Intn(len(benchClusterLandmarks))]
					if _, err := c.Join(id, buildClusterPath(lm, rng.Intn(200_000))); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkClusterQuery measures concurrent closest-peer query throughput
// at 1, 4, and 16 shards over a fixed population.
func BenchmarkClusterQuery(b *testing.B) {
	const prepop = 10_000
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := benchCluster(b, shards, prepop)
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					p := pathtree.PeerID(rng.Intn(prepop) + 1)
					if _, err := c.Lookup(p); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkHandoff measures one fenced landmark handoff of a 10k-peer tree
// while concurrent writers keep joining peers under the other landmarks.
// The freeze is scoped to the source/destination shard pair, so the
// bystander writers should stay mostly unimpeded; ns/op is the wall-clock
// cost of snapshotting, absorbing, and committing the move.
func BenchmarkHandoff(b *testing.B) {
	const treePeers = 10_000
	c, err := cluster.New(cluster.Config{Landmarks: benchClusterLandmarks, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	lm := benchClusterLandmarks[0]
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < treePeers; i++ {
		if _, err := c.Join(pathtree.PeerID(i+1), buildClusterPath(lm, rng.Intn(200_000))); err != nil {
			b.Fatal(err)
		}
	}
	// Background writers on the other landmarks: the handoff freeze covers
	// only the src/dst shard pair, so these mostly route to live shards.
	stop := make(chan struct{})
	done := make(chan struct{})
	var next atomic.Int64
	next.Store(1_000_000)
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			wrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				other := benchClusterLandmarks[1+wrng.Intn(len(benchClusterLandmarks)-1)]
				id := pathtree.PeerID(next.Add(1))
				if _, err := c.Join(id, buildClusterPath(other, wrng.Intn(200_000))); err != nil {
					return
				}
			}
		}(int64(w))
	}
	srcShard, ok := c.ShardFor(lm)
	if !ok {
		b.Fatalf("landmark %d has no shard", lm)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := (srcShard + 1) % 4
		if err := c.MoveLandmark(lm, dst); err != nil {
			b.Fatal(err)
		}
		srcShard = dst
	}
	b.StopTimer()
	close(stop)
	for w := 0; w < 4; w++ {
		<-done
	}
	b.ReportMetric(treePeers, "peers/handoff")
}

// --- supporting micro-benchmarks ---

// BenchmarkTopologyGenerate measures paper-scale map generation.
func BenchmarkTopologyGenerate(b *testing.B) {
	cfg := topology.DefaultConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := topology.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceroute measures one simulated trace on the paper-scale map
// with a warm routing-tree cache (the steady-state join cost).
func BenchmarkTraceroute(b *testing.B) {
	g, err := topology.Generate(topology.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	tr := traceroute.New(g, nil)
	leaves := topology.LeafRouters(g)
	if _, err := tr.Trace(leaves[0], 0, traceroute.Config{}, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := leaves[i%len(leaves)]
		if _, err := tr.Trace(src, 0, traceroute.Config{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtoJoinRoundTrip measures wire encode+decode of a typical
// join on the zero-alloc path: a pooled encode buffer and a reused decode
// target, the shape the netserver hot loop uses. The committed baseline
// pins this at 0 allocs/op.
func BenchmarkProtoJoinRoundTrip(b *testing.B) {
	req := &proto.JoinRequest{
		Peer: 42,
		Addr: "203.0.113.9:7000",
		Path: []int32{901, 556, 23, 8, 1, 0},
	}
	var got proto.JoinRequest
	// One warm-up round trip primes the buffer freelist and the decode
	// target's path capacity, so even a b.N=1 run (the CI alloc gate at
	// -benchtime 1x) measures the steady state the pin is about.
	if buf, err := proto.AppendJoinRequest(proto.GetBuf(0), req); err != nil {
		b.Fatal(err)
	} else if err := proto.DecodeJoinRequestInto(&got, buf); err != nil {
		b.Fatal(err)
	} else {
		proto.PutBuf(buf)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := proto.AppendJoinRequest(proto.GetBuf(0), req)
		if err != nil {
			b.Fatal(err)
		}
		if err := proto.DecodeJoinRequestInto(&got, buf); err != nil {
			b.Fatal(err)
		}
		proto.PutBuf(buf)
	}
}

// BenchmarkOpRoundTrip measures the op codec on the durable commit path:
// pooled encode (what cluster.commit does per WAL record) and reused-target
// decode (what replay and follower apply do per record). The committed
// baseline pins this at 0 allocs/op.
func BenchmarkOpRoundTrip(b *testing.B) {
	o := op.Join(42, []topology.NodeID{901, 556, 23, 8, 1, 0}, "203.0.113.9:7000", 77)
	var got op.Op
	// Warm-up as in BenchmarkProtoJoinRoundTrip: prime the freelist and
	// decode-target capacity so b.N=1 measures steady state.
	if rec, err := op.Append(op.GetBuf(), o); err != nil {
		b.Fatal(err)
	} else if err := op.DecodeInto(&got, rec); err != nil {
		b.Fatal(err)
	} else {
		op.PutBuf(rec)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := op.Append(op.GetBuf(), o)
		if err != nil {
			b.Fatal(err)
		}
		if err := op.DecodeInto(&got, rec); err != nil {
			b.Fatal(err)
		}
		op.PutBuf(rec)
	}
}

// BenchmarkServerJoin measures the end-to-end management-server join (query
// + insert) at steady state.
func BenchmarkServerJoin(b *testing.B) {
	w, err := experiment.BuildWorld(benchWorld(10))
	if err != nil {
		b.Fatal(err)
	}
	if err := w.JoinN(1500); err != nil {
		b.Fatal(err)
	}
	pool := w.LeafPool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := pathtree.PeerID(1_000_000 + i)
		att := pool[i%len(pool)]
		if _, err := w.JoinPeer(id, att); err != nil {
			b.Fatal(err)
		}
	}
}

// --- pipelined wire-protocol benchmarks (real TCP over loopback) ---

// benchNetCluster starts a 4-shard cluster behind a TCP front end, so the
// wire protocol — not the management logic — is the measured bottleneck.
// A non-nil registry threads telemetry through both layers, for measuring
// what the instrumentation itself costs.
func benchNetCluster(b *testing.B, reg *telemetry.Registry) *netserver.NetServer {
	b.Helper()
	lms := benchClusterLandmarks[:4]
	logic, err := cluster.New(cluster.Config{Landmarks: lms, Shards: 4, Telemetry: reg})
	if err != nil {
		b.Fatal(err)
	}
	ns, err := netserver.Listen(netserver.Config{Addr: "127.0.0.1:0", Server: logic, Telemetry: reg})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ns.Close() })
	return ns
}

// benchPathFor reports paths round-robin over the first four cluster
// landmarks.
func benchPathFor(peer int64) []int32 {
	lm := int32(benchClusterLandmarks[int(peer)%4])
	return loadgen.TreePath(lm, int(peer))
}

// runLoad drives b.N joins through the loadgen harness and reports
// throughput.
func runLoad(b *testing.B, ns *netserver.NetServer, cfg loadgen.Config) {
	b.Helper()
	runLoadAddr(b, ns.Addr(), cfg)
}

func runLoadAddr(b *testing.B, addr string, cfg loadgen.Config) {
	b.Helper()
	cfg.Addr = addr
	cfg.Joins = b.N
	// Floor the run length: at -benchtime 1x (the CI regression job),
	// b.N=1 would time connection setup instead of join throughput and
	// make joins/s meaningless. 2000 joins keep every mode's measurement
	// dominated by steady-state traffic while staying under a second.
	if cfg.Joins < 2000 {
		cfg.Joins = 2000
	}
	cfg.PathFor = benchPathFor
	res, err := loadgen.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if res.Errors > 0 {
		b.Fatalf("%d joins failed", res.Errors)
	}
	b.ReportMetric(res.JoinsPerSec, "joins/s")
	b.ReportMetric(float64(res.P99.Nanoseconds()), "p99-ns")
}

// BenchmarkPipelinedJoin compares join throughput over the SAME connection
// count with the old lock-step protocol (one outstanding request) versus
// the pipelined protocol at increasing in-flight depths — the headline
// claim of the wire-protocol redesign (≥2x at depth 64).
//
// The connections run through a loopback latency proxy adding 0.5ms each
// way (1ms RTT — a close-by datacenter client). Without it, a
// single-machine benchmark lets the lock-step client borrow the idle CPU
// the server isn't using and hides exactly the stall pipelining removes;
// real deployments serve remote peers, so RTT is part of the workload.
func BenchmarkPipelinedJoin(b *testing.B) {
	modes := []struct {
		name     string
		inflight int
		lockstep bool
	}{
		{"lockstep", 1, true},
		{"inflight=16", 16, false},
		{"inflight=64", 64, false},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			ns := benchNetCluster(b, nil)
			proxy, err := loadgen.NewLatencyProxy(ns.Addr(), 500*time.Microsecond)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { proxy.Close() })
			b.ResetTimer()
			runLoadAddr(b, proxy.Addr(), loadgen.Config{
				Clients:           4,
				InFlight:          m.inflight,
				DisablePipelining: m.lockstep,
			})
		})
	}
}

// BenchmarkInstrumentedJoin is BenchmarkPipelinedJoin/inflight=64 with the
// full telemetry plane enabled — per-request counters and latency
// histograms in the front end, per-shard apply counters in the cluster —
// so CI can gate the instrumentation's overhead as a within-run ratio
// against the uninstrumented twin (see the bench job's -ratio flag).
func BenchmarkInstrumentedJoin(b *testing.B) {
	reg := telemetry.NewRegistry()
	ns := benchNetCluster(b, reg)
	proxy, err := loadgen.NewLatencyProxy(ns.Addr(), 500*time.Microsecond)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { proxy.Close() })
	b.ResetTimer()
	runLoadAddr(b, proxy.Addr(), loadgen.Config{
		Clients:  4,
		InFlight: 64,
	})
}

// BenchmarkTelemetryHotPath measures exactly what one served request adds:
// a counter increment plus a latency observation on pre-resolved handles.
// ReportAllocs backs the zero-allocation contract — benchcmp fails the run
// if allocs/op ever leaves 0.
func BenchmarkTelemetryHotPath(b *testing.B) {
	reg := telemetry.NewRegistry()
	reqs := reg.Counter(`proxdisc_requests_total{type="join_request"}`)
	lat := reg.Histogram(`proxdisc_request_duration_seconds{type="join_request"}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs.Inc()
		lat.Observe(time.Duration(i) * time.Nanosecond)
	}
}

// BenchmarkTelemetryHotPathParallel is the false-sharing probe for the
// padded Counter/Gauge cells: goroutines hammer DISTINCT metrics that
// were allocated back to back, the layout every component's metric set
// has in practice. Without the cache-line padding the adjacent atomic
// words share lines and a -cpu 4 run collapses to coherence traffic; with
// it, per-cell updates scale. Compare against the single-metric
// BenchmarkTelemetryHotPath at the same -cpu.
func BenchmarkTelemetryHotPathParallel(b *testing.B) {
	reg := telemetry.NewRegistry()
	const cells = 16
	counters := make([]*telemetry.Counter, cells)
	gauges := make([]*telemetry.Gauge, cells)
	for i := range counters {
		counters[i] = reg.Counter(fmt.Sprintf(`proxdisc_bench_cell_total{cell="%d"}`, i))
		gauges[i] = reg.Gauge(fmt.Sprintf(`proxdisc_bench_cell{cell="%d"}`, i))
	}
	// No ReportAllocs here: at -benchtime 1x the RunParallel goroutine
	// setup amortizes over a single op and reads as phantom allocs/op,
	// which would arm the machine-independent alloc gate on harness
	// noise. The zero-allocation contract is pinned by the serial
	// TelemetryHotPath; this variant exists for the false-sharing story.
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)-1) % cells
		ctr, g := counters[i], gauges[i]
		var v int64
		for pb.Next() {
			ctr.Inc()
			v++
			g.Set(v)
		}
	})
}

// BenchmarkBatchJoin measures the flash-crowd path: joins grouped into
// MsgBatchJoinRequest frames, which amortize framing, syscalls, and the
// per-shard lock acquisition.
func BenchmarkBatchJoin(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			ns := benchNetCluster(b, nil)
			b.ResetTimer()
			runLoad(b, ns, loadgen.Config{
				Clients:  1,
				InFlight: 16,
				Batch:    batch,
			})
		})
	}
}

// millionNode caches the million-peer durable node across benchmark
// invocations: the harness re-runs the function with growing b.N, and
// refilling a million peers per run would swamp the measurement. The
// node (and its temp dir) intentionally outlive the benchmark and are
// reclaimed at process exit — this is a benchmark binary, not a server.
var millionNode struct {
	once sync.Once
	addr string
	err  error
	next atomic.Int64 // first unused peer ID for measured joins
}

const millionPeers = 1_000_000

// millionPeerAddr fills a single durable 4-shard node to one million
// resident peers (once per process) and returns its address.
func millionPeerAddr(b *testing.B) string {
	b.Helper()
	m := &millionNode
	m.once.Do(func() {
		dir, err := os.MkdirTemp("", "proxdisc-million-*")
		if err != nil {
			m.err = err
			return
		}
		logic, err := cluster.New(cluster.Config{
			Landmarks: benchClusterLandmarks[:4],
			Shards:    4,
			DataDir:   dir,
			// Group commit holds each fsync open briefly so concurrent
			// batches share it — the sync-parallel configuration.
			MaxSyncDelay: 200 * time.Microsecond,
			SegmentBytes: 64 << 20,
			// No automatic checkpoints: a snapshot of a million-peer tree
			// mid-measurement would be its own (paced) benchmark. The
			// pacing knob is still set so a manual Checkpoint behaves as
			// production would.
			SnapshotEvery:         1 << 30,
			SnapshotBytes:         -1,
			CheckpointBytesPerSec: 64 << 20,
		})
		if err != nil {
			m.err = err
			return
		}
		ns, err := netserver.Listen(netserver.Config{Addr: "127.0.0.1:0", Server: logic})
		if err != nil {
			m.err = err
			return
		}
		res, err := loadgen.Run(loadgen.Config{
			Addr:     ns.Addr(),
			Clients:  2,
			InFlight: 32,
			Batch:    256,
			Joins:    millionPeers,
			PathFor:  benchPathFor,
		})
		if err != nil {
			m.err = err
			return
		}
		if res.Errors > 0 {
			m.err = fmt.Errorf("million-peer fill: %d joins failed", res.Errors)
			return
		}
		m.addr = ns.Addr()
		m.next.Store(millionPeers + 1)
	})
	if m.err != nil {
		b.Fatalf("million-peer fill: %v", m.err)
	}
	return m.addr
}

// BenchmarkMillionPeerNode is the macro benchmark of the million-peer hot
// path: one durable node filled to 1e6 resident peers, then measured for
// steady-state batched join throughput and p99 (the joins/s and p99-ns
// metrics) and for lookup p99 against random resident peers
// (lookup-p99-ns). allocs/op covers the measured join phase only — the
// fill runs once, before the timer, and lookups run after StopTimer.
func BenchmarkMillionPeerNode(b *testing.B) {
	if testing.Short() {
		b.Skip("the million-peer fill takes on the order of a minute")
	}
	addr := millionPeerAddr(b)
	// Claim a fresh ID range so re-invocations at larger b.N measure
	// first-time inserts, not re-joins of peers already resident.
	n := int64(b.N)
	if n < 2000 {
		n = 2000 // runLoadAddr floors the run length identically
	}
	base := millionNode.next.Add(n) - n
	// Offered load scales with the core count: one pipelined connection per
	// processor, so the -cpu 4 variant measures what the extra cores buy
	// (the sharded WAL and per-shard apply path) rather than how fast one
	// connection can feed a many-core server. At GOMAXPROCS=1 this is the
	// historical single-client configuration.
	clients := runtime.GOMAXPROCS(0)
	if clients > 8 {
		clients = 8
	}
	b.ReportAllocs()
	b.ResetTimer()
	runLoadAddr(b, addr, loadgen.Config{
		Clients:  clients,
		InFlight: 16,
		Batch:    32,
		PeerBase: base,
	})
	b.StopTimer()

	c, err := client.Dial(addr, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	const lookups = 2000
	lat := make([]time.Duration, 0, lookups)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < lookups; i++ {
		peer := rng.Int63n(millionPeers) + 1 // resident: fill used IDs 1..1e6
		start := time.Now()
		if _, err := c.Lookup(peer); err != nil {
			b.Fatalf("lookup of resident peer %d: %v", peer, err)
		}
		lat = append(lat, time.Since(start))
	}
	slices.Sort(lat)
	b.ReportMetric(float64(lat[lookups*99/100].Nanoseconds()), "lookup-p99-ns")
}

// BenchmarkMillionPeerNodeParallel is the many-core stress shape of the
// macro benchmark: RunParallel writer goroutines — each owning a
// connection issuing 32-join batches — against background readers running
// lookups of resident peers for the whole measured window. Run with
// -cpu 1,4 to see the write plane scale; the contention profile of this
// benchmark (-mutexprofile/-blockprofile) is what drove the sharded WAL
// and the left-right write coalescer.
func BenchmarkMillionPeerNodeParallel(b *testing.B) {
	if testing.Short() {
		b.Skip("the million-peer fill takes on the order of a minute")
	}
	addr := millionPeerAddr(b)
	const batch = 32
	stop := make(chan struct{})
	var readers sync.WaitGroup
	var lookFail atomic.Value
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			c, err := client.Dial(addr, 5*time.Second)
			if err != nil {
				lookFail.Store(err.Error())
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Lookup(rng.Int63n(millionPeers) + 1); err != nil {
					lookFail.Store(err.Error())
					return
				}
			}
		}(g)
	}
	var joins atomic.Int64
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		c, err := client.Dial(addr, 5*time.Second)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		items := make([]client.BatchItem, batch)
		for pb.Next() {
			lo := millionNode.next.Add(batch) - batch
			for k := range items {
				p := lo + int64(k)
				items[k] = client.BatchItem{Peer: p, Path: benchPathFor(p)}
			}
			res, err := c.JoinBatch(items)
			if err != nil {
				b.Error(err)
				return
			}
			for _, r := range res {
				if r.Err != nil {
					b.Error(r.Err)
					return
				}
			}
			joins.Add(batch)
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()
	close(stop)
	readers.Wait()
	if msg, ok := lookFail.Load().(string); ok && msg != "" {
		b.Fatalf("concurrent lookup failed: %s", msg)
	}
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(joins.Load())/s, "joins/s")
	}
}

// BenchmarkBatchJoinParallel is the multi-writer shape of the flash-crowd
// path: RunParallel goroutines each drive their own connection of 32-join
// batches at a fresh 4-shard node. Joins from different goroutines land on
// different shards, so with -cpu 4 this exercises the sharded WAL's
// cross-stream group commit rather than queueing every batch on one
// append lock.
func BenchmarkBatchJoinParallel(b *testing.B) {
	const batch = 32
	ns := benchNetCluster(b, nil)
	var next atomic.Int64
	next.Store(1)
	var joins atomic.Int64
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		c, err := client.Dial(ns.Addr(), 5*time.Second)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		items := make([]client.BatchItem, batch)
		for pb.Next() {
			lo := next.Add(batch) - batch
			for k := range items {
				p := lo + int64(k)
				items[k] = client.BatchItem{Peer: p, Path: benchPathFor(p)}
			}
			res, err := c.JoinBatch(items)
			if err != nil {
				b.Error(err)
				return
			}
			for _, r := range res {
				if r.Err != nil {
					b.Error(r.Err)
					return
				}
			}
			joins.Add(batch)
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(joins.Load())/s, "joins/s")
	}
}

// BenchmarkServerJoinBatch measures the in-process single-lock batch
// insert against the equivalent sequence of singular joins.
func BenchmarkServerJoinBatch(b *testing.B) {
	for _, batch := range []int{1, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			c := benchCluster(b, 4, 10_000)
			rng := rand.New(rand.NewSource(99))
			items := make([]server.BatchJoin, batch)
			b.ResetTimer()
			id := int64(1_000_000)
			for i := 0; i < b.N; i += batch {
				for k := range items {
					lm := benchClusterLandmarks[rng.Intn(len(benchClusterLandmarks))]
					path := buildClusterPath(lm, rng.Intn(200_000))
					items[k] = server.BatchJoin{Peer: pathtree.PeerID(id), Path: path}
					id++
				}
				for _, r := range c.JoinBatch(items) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkWALAppend measures the durability tax of the write path: one
// encoded join op appended to the write-ahead log per operation, with
// group commit batching concurrent appenders into shared fsyncs. The
// sync variants are the real durable cost; nosync isolates the framing
// and buffering overhead from the disk.
func BenchmarkWALAppend(b *testing.B) {
	rec, err := op.Encode(op.Join(12345, buildClusterPath(benchClusterLandmarks[0], 777), "10.0.0.1:4100", 1))
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name   string
		nosync bool
		par    bool
	}{
		{"sync", false, false},
		{"sync-parallel", false, true},
		{"nosync", true, false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			log, err := wal.Open(b.TempDir(), wal.Options{NoSync: bc.nosync})
			if err != nil {
				b.Fatal(err)
			}
			defer log.Close()
			b.SetBytes(int64(len(rec)))
			b.ResetTimer()
			if bc.par {
				// RunParallel spawns GOMAXPROCS×parallelism goroutines; on a
				// single-core runner the default is ONE goroutine — serial
				// appends plus RunParallel overhead, which is how "parallel"
				// used to lose to "sync". Eight workers model eight
				// connections committing concurrently: while the leader
				// blocks in fsync the others append and queue, so each disk
				// sync covers a whole batch (group commit).
				b.SetParallelism(8)
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if _, err := log.Append(rec); err != nil {
							b.Error(err)
							return
						}
					}
				})
				return
			}
			for i := 0; i < b.N; i++ {
				if _, err := log.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The sharded log under the same parallel-committer load: appenders
	// spread over four per-shard streams, so they contend only on the
	// global sequence counter and share fsyncs through the cross-stream
	// group-commit coordinator instead of queueing on one append mutex.
	b.Run("sharded-parallel", func(b *testing.B) {
		log, err := wal.OpenSharded(b.TempDir(), 4, wal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer log.Close()
		var worker atomic.Int64
		b.SetBytes(int64(len(rec)))
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			stream := int(worker.Add(1)-1) % log.Streams()
			for pb.Next() {
				if _, err := log.Append(stream, rec); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// BenchmarkRecovery measures crash recovery: reopening a durable cluster
// whose data directory holds an on-disk snapshot plus a WAL tail of
// acknowledged joins, timing the snapshot restore and tail replay that
// rebuild the shards exactly.
func BenchmarkRecovery(b *testing.B) {
	const (
		snapshotPeers = 4000
		tailJoins     = 1000
	)
	dir := b.TempDir()
	cfg := cluster.Config{
		Landmarks: benchClusterLandmarks,
		Shards:    4,
		DataDir:   dir,
		NoSync:    true, // setup speed; recovery reads are sync-independent
	}
	c, err := cluster.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	join := func(id int64) {
		lm := benchClusterLandmarks[rng.Intn(len(benchClusterLandmarks))]
		if _, err := c.Join(pathtree.PeerID(id), buildClusterPath(lm, rng.Intn(200_000))); err != nil {
			b.Fatal(err)
		}
	}
	id := int64(1)
	for i := 0; i < snapshotPeers; i++ {
		join(id)
		id++
	}
	if err := c.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < tailJoins; i++ {
		join(id)
		id++
	}
	// Crash: the setup cluster is abandoned un-Closed (a Close would
	// checkpoint and truncate away the very tail this bench measures).
	// Each iteration recovers from a throwaway copy of the directory, so
	// the recovered cluster can be Closed — no fd/goroutine pile-up —
	// without its shutdown checkpoint contaminating later iterations.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		iterCfg := cfg
		iterCfg.DataDir = copyDataDir(b, dir)
		b.StartTimer()
		re, err := cluster.New(iterCfg)
		if err != nil {
			b.Fatal(err)
		}
		if got := re.NumPeers(); got != snapshotPeers+tailJoins {
			b.Fatalf("recovered %d peers, want %d", got, snapshotPeers+tailJoins)
		}
		b.StopTimer()
		if err := re.Close(); err != nil {
			b.Fatal(err)
		}
		os.RemoveAll(iterCfg.DataDir)
		b.StartTimer()
	}
	b.ReportMetric(float64(snapshotPeers+tailJoins), "peers/recovery")
}

// copyDataDir clones a durable data directory for one recovery iteration.
func copyDataDir(b *testing.B, src string) string {
	b.Helper()
	dst := filepath.Join(b.TempDir(), "data")
	if err := os.MkdirAll(dst, 0o777); err != nil {
		b.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o666); err != nil {
			b.Fatal(err)
		}
	}
	return dst
}

// BenchmarkOpStreamShip measures cross-process replication throughput:
// joins committed on a durable primary, shipped over the MsgOpStream
// protocol to a TCP follower behind a loopback latency proxy adding 1ms
// of RTT (the close-by-datacenter follower), and applied to the
// follower's copy. The timer covers commit + ship + apply up to
// convergence; the windowed stream keeps many records in flight, so the
// per-op cost should be far below one RTT.
func BenchmarkOpStreamShip(b *testing.B) {
	clu, err := cluster.New(cluster.Config{
		Landmarks: benchClusterLandmarks,
		Shards:    4,
		DataDir:   b.TempDir(),
		NoSync:    true, // isolate shipping from the disk-sync cost BenchmarkWALAppend measures
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { clu.Close() })
	ns, err := netserver.Listen(netserver.Config{Addr: "127.0.0.1:0", Server: clu})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ns.Close() })
	proxy, err := loadgen.NewLatencyProxy(ns.Addr(), 500*time.Microsecond)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { proxy.Close() })
	backend, err := server.New(server.Config{Landmarks: benchClusterLandmarks})
	if err != nil {
		b.Fatal(err)
	}
	f, err := netserver.StartFollower(netserver.FollowerConfig{
		PrimaryAddr: proxy.Addr(),
		Backend:     backend,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })

	rng := rand.New(rand.NewSource(11))
	join := func(id int64) {
		lm := benchClusterLandmarks[rng.Intn(len(benchClusterLandmarks))]
		if _, err := clu.Join(pathtree.PeerID(id), buildClusterPath(lm, rng.Intn(200_000))); err != nil {
			b.Fatal(err)
		}
	}
	// Warm the stream (subscription, first head exchange) outside the timer.
	join(1)
	waitFollower(b, f, clu)
	b.ResetTimer()
	id := int64(2)
	for i := 0; i < b.N; i++ {
		join(id)
		id++
	}
	waitFollower(b, f, clu)
	b.StopTimer()
	if got := backend.NumPeers(); got != clu.NumPeers() {
		b.Fatalf("follower holds %d peers, primary %d", got, clu.NumPeers())
	}
}

// BenchmarkFollowerCatchup measures a follower (re)connecting far behind
// the primary: the data directory holds a 4000-peer snapshot plus a
// 1000-op WAL tail, and each iteration brings a fresh follower from
// nothing to converged — snapshot shipping, tail replay, and the local
// rebuild, end to end over TCP.
func BenchmarkFollowerCatchup(b *testing.B) {
	const (
		snapshotPeers = 4000
		tailJoins     = 1000
	)
	clu, err := cluster.New(cluster.Config{
		Landmarks: benchClusterLandmarks,
		Shards:    4,
		DataDir:   b.TempDir(),
		NoSync:    true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { clu.Close() })
	rng := rand.New(rand.NewSource(13))
	id := int64(1)
	join := func() {
		lm := benchClusterLandmarks[rng.Intn(len(benchClusterLandmarks))]
		if _, err := clu.Join(pathtree.PeerID(id), buildClusterPath(lm, rng.Intn(200_000))); err != nil {
			b.Fatal(err)
		}
		id++
	}
	for i := 0; i < snapshotPeers; i++ {
		join()
	}
	if err := clu.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < tailJoins; i++ {
		join()
	}
	ns, err := netserver.Listen(netserver.Config{Addr: "127.0.0.1:0", Server: clu})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ns.Close() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		backend, err := server.New(server.Config{Landmarks: benchClusterLandmarks})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		f, err := netserver.StartFollower(netserver.FollowerConfig{
			PrimaryAddr: ns.Addr(),
			Backend:     backend,
		})
		if err != nil {
			b.Fatal(err)
		}
		waitFollower(b, f, clu)
		b.StopTimer()
		if got := backend.NumPeers(); got != snapshotPeers+tailJoins {
			b.Fatalf("follower holds %d peers, want %d", got, snapshotPeers+tailJoins)
		}
		f.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(snapshotPeers+tailJoins), "peers/catchup")
}

// waitFollower spins until the follower has applied the cluster's head.
func waitFollower(b *testing.B, f *netserver.Follower, clu *cluster.Cluster) {
	b.Helper()
	head := clu.CommittedHead()
	deadline := time.Now().Add(30 * time.Second)
	for f.Applied() < head {
		if time.Now().After(deadline) {
			b.Fatalf("follower stuck at seq %d of %d (last err %v)", f.Applied(), head, f.Err())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// BenchmarkSubscribeFanout measures the subscription plane's dispatch hot
// path: one committed op evaluated against N registered filters and the
// resulting event pushed into each subscriber's fixed ring, with a
// consumer draining every ring concurrently. One op is one iteration, so
// ns/op is the full fan-out latency and events/s the aggregate delivery
// rate. ReportAllocs backs the zero-allocation contract of the
// steady-state event path (the ring is fixed, the filter state is
// pre-built) — benchcmp fails the run if allocs/op ever leaves 0.
func BenchmarkSubscribeFanout(b *testing.B) {
	for _, nsubs := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("subs=%d", nsubs), func(b *testing.B) {
			srv, err := server.New(server.Config{Landmarks: []topology.NodeID{0}})
			if err != nil {
				b.Fatal(err)
			}
			const subject = pathtree.PeerID(1)
			if _, err := srv.Join(subject, []topology.NodeID{5, 3, 0}); err != nil {
				b.Fatal(err)
			}
			plane := sub.New(srv, nil)
			defer plane.Close()
			var delivered atomic.Uint64
			for i := 0; i < nsubs; i++ {
				sb, _, _, err := plane.Add(sub.Query{Kind: proto.QueryPeer, Peer: subject})
				if err != nil {
					b.Fatal(err)
				}
				go func() {
					for {
						select {
						case <-sb.Ready():
							for {
								if _, ok := sb.Take(); !ok {
									break
								}
								delivered.Add(1)
							}
						case <-sb.Done():
							return
						}
					}
				}()
			}
			// A refresh of a watched peer is the leanest delta: no backend
			// lookup, one update event per subscriber.
			refresh := op.Refresh(subject, 1)
			// Warm up off the clock: the first dispatches grow goroutine
			// stacks and channel buffers; the steady state allocates
			// nothing, and that is what the zero-alloc gate measures.
			const warmup = 64
			for i := 0; i < warmup; i++ {
				plane.FeedOp(uint64(i+1), refresh)
			}
			for delivered.Load() < uint64(warmup*nsubs) {
				runtime.Gosched()
			}
			b.ReportAllocs()
			b.ResetTimer()
			want := delivered.Load()
			for i := 0; i < b.N; i++ {
				plane.FeedOp(uint64(warmup+i+1), refresh)
				want += uint64(nsubs)
				for delivered.Load() < want {
					runtime.Gosched()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(nsubs*b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// newCountingProxy forwards a fresh listener to backend, counting every
// byte relayed in either direction — the wire cost the primary pays for
// whatever read plane runs through it.
func newCountingProxy(b *testing.B, backend string) (addr string, total *atomic.Uint64) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	var bytes atomic.Uint64
	relay := func(dst, src net.Conn) {
		defer dst.Close()
		defer src.Close()
		buf := make([]byte, 32<<10)
		for {
			n, err := src.Read(buf)
			bytes.Add(uint64(n))
			if n > 0 {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s, err := net.Dial("tcp", backend)
			if err != nil {
				c.Close()
				continue
			}
			go relay(s, c)
			go relay(c, s)
		}
	}()
	return ln.Addr().String(), &bytes
}

// servedOps sums everything the primary did for its clients: request
// frames handled by the front end plus subscription events pushed.
func servedOps(reg *telemetry.Registry) uint64 {
	total := reg.Counter(`proxdisc_requests_total{type="unknown"}`).Value()
	for t := 1; t < proto.NumMsgTypes; t++ {
		total += reg.Counter(`proxdisc_requests_total{type="` + proto.MsgType(t).String() + `"}`).Value()
	}
	return total + reg.Counter("proxdisc_sub_events_total").Value()
}

// benchReadPlane runs the read-plane comparison scenario once: 100
// clients each track one subject's k-closest set through 60 churn ticks,
// either by polling once per tick (the pre-subscription pattern) or by
// holding one live subscription. It returns the primary-side wire bytes
// and served ops the tracking cost — the shared churn writes (issued on a
// direct, uncounted connection) are subtracted from the op count.
func benchReadPlane(b *testing.B, subscribe bool) (wireBytes, ops uint64) {
	b.Helper()
	const (
		clients = 100
		ticks   = 60
	)
	clu, err := cluster.New(cluster.Config{
		Landmarks: []topology.NodeID{0},
		DataDir:   b.TempDir(),
		NoSync:    true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer clu.Close()
	reg := telemetry.NewRegistry()
	ns, err := netserver.Listen(netserver.Config{Addr: "127.0.0.1:0", Server: clu, Telemetry: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer ns.Close()

	direct, err := client.Dial(ns.Addr(), 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer direct.Close()
	leaf := func(i int) []int32 { return []int32{int32(2000 + i), int32(10 + i%10), 0} }
	for i := 1; i <= clients; i++ {
		if _, err := direct.Join(int64(i), fmt.Sprintf("peer-%d:7000", i), leaf(i)); err != nil {
			b.Fatal(err)
		}
	}

	proxyAddr, proxied := newCountingProxy(b, ns.Addr())
	cs := make([]*client.Client, clients)
	for i := range cs {
		if cs[i], err = client.Dial(proxyAddr, 5*time.Second); err != nil {
			b.Fatal(err)
		}
		defer cs[i].Close()
	}

	// Everything from here on is the tracking cost under measurement.
	baseBytes, baseOps := proxied.Load(), servedOps(reg)
	var directOps uint64 // issued outside the proxy; subtracted below

	var subs []*client.Subscription
	if subscribe {
		for i, c := range cs {
			s, err := c.Subscribe(context.Background(), client.KClosest(int64(i+1)))
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			subs = append(subs, s)
		}
	}

	for t := 0; t < ticks; t++ {
		// One committed change per simulated second: a transient peer
		// lands on some subject's own leaf router (always entering that
		// subject's answer), and the previous one departs.
		if t > 0 {
			if err := direct.Leave(int64(5000 + t - 1)); err != nil {
				b.Fatal(err)
			}
			directOps++
		}
		target := (t*7)%clients + 1
		if _, err := direct.Join(int64(5000+t), fmt.Sprintf("churn-%d:7000", t), leaf(target)); err != nil {
			b.Fatal(err)
		}
		directOps++
		if !subscribe {
			for i, c := range cs {
				if _, err := c.Lookup(int64(i + 1)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	if subscribe {
		// Quiesce: every cache must match a fresh (uncounted) lookup.
		deadline := time.Now().Add(10 * time.Second)
		for i, s := range subs {
			for {
				fresh, err := direct.Lookup(int64(i + 1))
				if err != nil {
					b.Fatal(err)
				}
				directOps++
				cache, ok := s.Cache()
				if ok && benchCandsEqual(cache, fresh) {
					break
				}
				if time.Now().After(deadline) {
					b.Fatalf("subscription %d never converged (coherent=%v)", i+1, ok)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	return proxied.Load() - baseBytes, servedOps(reg) - baseOps - directOps
}

func benchCandsEqual(a, b []proto.Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BenchmarkPollVsSubscribe is the read plane's headline comparison: 100
// clients tracking their k-closest sets through 60 churn ticks, once via
// the pre-subscription pattern (one Lookup per client per tick) and once
// via live subscriptions. It reports the primary-side wire bytes and
// served ops of each mode and their ratios, and fails outright if
// subscriptions stop being at least 5x cheaper on either axis.
func BenchmarkPollVsSubscribe(b *testing.B) {
	var pollBytes, pollOps, subBytes, subOps uint64
	for i := 0; i < b.N; i++ {
		pollBytes, pollOps = benchReadPlane(b, false)
		subBytes, subOps = benchReadPlane(b, true)
	}
	byteRatio := float64(pollBytes) / float64(subBytes)
	opRatio := float64(pollOps) / float64(subOps)
	b.ReportMetric(float64(pollBytes), "poll-bytes")
	b.ReportMetric(float64(subBytes), "sub-bytes")
	b.ReportMetric(byteRatio, "bytes-ratio")
	b.ReportMetric(float64(pollOps), "poll-ops")
	b.ReportMetric(float64(subOps), "sub-ops")
	b.ReportMetric(opRatio, "ops-ratio")
	if byteRatio < 5 || opRatio < 5 {
		b.Fatalf("subscriptions must be >=5x cheaper: bytes %d vs %d (%.1fx), ops %d vs %d (%.1fx)",
			pollBytes, subBytes, byteRatio, pollOps, subOps, opRatio)
	}
}
