package proxdisc

import (
	"testing"
	"time"
)

// TestPublicPathTree exercises the core data structure through the public
// API exactly as a downstream user would.
func TestPublicPathTree(t *testing.T) {
	tree := NewPathTree(0)
	if err := tree.Insert(1, []RouterID{10, 12, 0}); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(2, []RouterID{11, 12, 0}); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(3, []RouterID{13, 0}); err != nil {
		t.Fatal(err)
	}
	got, err := tree.Closest(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Peer != 2 || got[0].DTree != 2 {
		t.Fatalf("closest=%v", got)
	}
}

// TestPublicServer exercises the management-server logic.
func TestPublicServer(t *testing.T) {
	srv, err := NewServer(ServerConfig{Landmarks: []RouterID{0}, NeighborCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Join(1, []RouterID{10, 0}); err != nil {
		t.Fatal(err)
	}
	cands, err := srv.Join(2, []RouterID{11, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Peer != 1 {
		t.Fatalf("cands=%v", cands)
	}
}

// TestPublicSimulation runs the full simulated protocol.
func TestPublicSimulation(t *testing.T) {
	sim, err := NewSimulation(SimulationConfig{
		Topology: TopologyConfig{
			CoreRouters: 300, LeafRouters: 300, EdgesPerNode: 2, Seed: 5,
		},
		NumLandmarks: 4,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.JoinN(100); err != nil {
		t.Fatal(err)
	}
	q, err := sim.EvaluateQuality(30)
	if err != nil {
		t.Fatal(err)
	}
	if q.DOverDclosest() < 1.0 || q.DOverDclosest() > 2.0 {
		t.Fatalf("D/Dclosest=%v", q.DOverDclosest())
	}
}

// TestPublicNetworkStack runs server + landmark + agent end to end on
// loopback through the public API only.
func TestPublicNetworkStack(t *testing.T) {
	logic, err := NewServer(ServerConfig{Landmarks: []RouterID{0}})
	if err != nil {
		t.Fatal(err)
	}
	lm, err := ListenLandmark("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()
	ns, err := ListenAndServe(NetServerConfig{
		Addr:          "127.0.0.1:0",
		Server:        logic,
		LandmarkAddrs: map[RouterID]string{0: lm.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	join := func(peer int64, edge RouterID) []WireCandidate {
		c, err := Dial(ns.Addr(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		agent := &Agent{
			Client: c,
			Provider: PathProviderFunc(func(landmark int32) ([]int32, error) {
				return []int32{int32(edge), 50, landmark}, nil
			}),
			ProbeTries:   1,
			ProbeTimeout: time.Second,
		}
		cands, err := agent.Join(peer)
		if err != nil {
			t.Fatal(err)
		}
		return cands
	}
	if got := join(1, 30); len(got) != 0 {
		t.Fatalf("first joiner got %v", got)
	}
	got := join(2, 31)
	if len(got) != 1 || got[0].Peer != 1 {
		t.Fatalf("second joiner got %v", got)
	}
}

func TestDefaultTopology(t *testing.T) {
	cfg := DefaultTopology()
	if cfg.CoreRouters != 2000 || cfg.LeafRouters != 2000 {
		t.Fatalf("default topology %+v", cfg)
	}
}

// TestPublicCluster exercises the sharded management cluster through the
// public API: same answers as a single Server, live landmark handoff, and
// a sharded simulation.
func TestPublicCluster(t *testing.T) {
	landmarks := []RouterID{0, 100, 200, 300}
	c, err := NewCluster(ClusterConfig{Landmarks: landmarks, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(ServerConfig{Landmarks: landmarks})
	if err != nil {
		t.Fatal(err)
	}
	paths := [][]RouterID{
		{10, 11, 0}, {12, 11, 0}, {20, 21, 100}, {22, 21, 100}, {30, 200}, {40, 300},
	}
	for i, path := range paths {
		p := PeerID(i + 1)
		a, errA := s.Join(p, path)
		b, errB := c.Join(p, path)
		if errA != nil || errB != nil {
			t.Fatalf("join %d: %v / %v", p, errA, errB)
		}
		if len(a) != len(b) {
			t.Fatalf("join %d: answers differ: %v vs %v", p, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("join %d: answers differ at %d: %v vs %v", p, j, a, b)
			}
		}
	}
	if c.NumPeers() != s.NumPeers() {
		t.Fatalf("cluster peers=%d server peers=%d", c.NumPeers(), s.NumPeers())
	}
	// Live handoff through the public surface.
	src, ok := c.ShardFor(100)
	if !ok {
		t.Fatal("no shard for landmark 100")
	}
	if err := c.MoveLandmark(100, (src+1)%c.NumShards()); err != nil {
		t.Fatal(err)
	}
	if c.NumPeers() != s.NumPeers() {
		t.Fatalf("handoff lost peers: %d vs %d", c.NumPeers(), s.NumPeers())
	}
	for i := range paths {
		if _, err := c.Lookup(PeerID(i + 1)); err != nil {
			t.Fatalf("lookup %d after handoff: %v", i+1, err)
		}
	}
}

// TestPublicShardedSimulation runs a small simulation over the sharded
// management plane.
func TestPublicShardedSimulation(t *testing.T) {
	sim, err := NewSimulation(SimulationConfig{
		Topology:     TopologyConfig{CoreRouters: 200, LeafRouters: 200, EdgesPerNode: 2, Seed: 5},
		NumLandmarks: 4,
		Shards:       4,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.JoinN(40); err != nil {
		t.Fatal(err)
	}
	if got := sim.Server.NumPeers(); got != 40 {
		t.Fatalf("peers=%d", got)
	}
}

// TestPublicReplicatedCluster drives the replication surface end to end:
// replicated shards, a primary kill, a replica rebuild, and a scheduled
// failover inside a simulation.
func TestPublicReplicatedCluster(t *testing.T) {
	landmarks := []RouterID{0, 100, 200, 300}
	c, err := NewCluster(ClusterConfig{Landmarks: landmarks, Shards: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	paths := [][]RouterID{
		{10, 11, 0}, {12, 11, 0}, {20, 21, 100}, {22, 21, 100}, {30, 200}, {40, 300},
	}
	for i, path := range paths {
		if _, err := c.Join(PeerID(i+1), path); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range c.Health() {
		if h.Live != 2 {
			t.Fatalf("health=%+v", h)
		}
	}
	if err := c.FailShard(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecoverReplica(0); err != nil {
		t.Fatal(err)
	}
	if got := c.NumPeers(); got != len(paths) {
		t.Fatalf("peers=%d after failover+rebuild", got)
	}
	for i := range paths {
		if _, err := c.Lookup(PeerID(i + 1)); err != nil {
			t.Fatalf("lookup %d: %v", i+1, err)
		}
	}

	sim, err := NewSimulation(SimulationConfig{
		Topology:     TopologyConfig{CoreRouters: 200, LeafRouters: 200, EdgesPerNode: 2, Seed: 9},
		NumLandmarks: 4,
		Shards:       2,
		Replicas:     2,
		Failovers:    []SimFailoverEvent{{AfterJoins: 20, Shard: 0}},
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.JoinN(40); err != nil {
		t.Fatal(err)
	}
	if got := sim.Server.NumPeers(); got != 40 {
		t.Fatalf("peers=%d", got)
	}
	if h := sim.Cluster().Health()[0]; h.Live != 1 {
		t.Fatalf("scheduled failover did not run: %+v", h)
	}
}
